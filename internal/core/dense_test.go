package core

import (
	"testing"

	"tieredmem/internal/mem"
	"tieredmem/internal/trace"
)

func TestSumEpochsZeroEpochs(t *testing.T) {
	if got := SumEpochs(nil); len(got.Pages) != 0 {
		t.Errorf("SumEpochs(nil) produced %d pages", len(got.Pages))
	}
	if got := SumEpochs([]EpochStats{{}, {}}); len(got.Pages) != 0 {
		t.Errorf("SumEpochs of empty epochs produced %d pages", len(got.Pages))
	}
}

func TestSumEpochsDuplicateKeysAndTierChange(t *testing.T) {
	epochs := []EpochStats{
		{Pages: []PageStat{
			{Key: PageKey{1, 1}, Tier: mem.FastTier, Abit: 1, Trace: 2, Write: 1, True: 3},
			// Duplicate key inside one epoch (crafted harvest): must
			// still accumulate, not clobber.
			{Key: PageKey{1, 1}, Tier: mem.FastTier, Abit: 1},
			{Key: PageKey{2, 7}, Tier: mem.SlowTier, Trace: 5},
		}},
		{Pages: []PageStat{
			// Same page, now demoted: counters add, latest tier wins.
			{Key: PageKey{1, 1}, Tier: mem.SlowTier, Abit: 3, True: 1},
		}},
	}
	got := SumEpochs(epochs)
	if len(got.Pages) != 2 {
		t.Fatalf("merged page count = %d, want 2", len(got.Pages))
	}
	// Canonical (PID, VPN) order.
	if got.Pages[0].Key != (PageKey{1, 1}) || got.Pages[1].Key != (PageKey{2, 7}) {
		t.Fatalf("merged order not canonical: %v, %v", got.Pages[0].Key, got.Pages[1].Key)
	}
	p := got.Pages[0]
	if p.Abit != 5 || p.Trace != 2 || p.Write != 1 || p.True != 4 {
		t.Errorf("counters not summed: %+v", p)
	}
	if p.Tier != mem.SlowTier {
		t.Errorf("tier = %d, want latest observation (slow)", p.Tier)
	}
}

// TestAttachTruthAllMissed: a profiler that saw nothing still gets the
// full ground-truth denominator, appended in ascending-PFN order.
func TestAttachTruthAllMissed(t *testing.T) {
	m := testMachine(t, 64)
	for i := uint64(0); i < 6; i++ {
		if _, err := m.Execute(trace.Ref{PID: 1, VAddr: i * 4096, Kind: trace.Load}); err != nil {
			t.Fatal(err)
		}
	}
	ep := EpochStats{Epoch: 3}
	AttachTruth(m.Phys, &ep)
	if len(ep.Pages) != 6 {
		t.Fatalf("appended %d missed pages, want 6", len(ep.Pages))
	}
	for i, ps := range ep.Pages {
		if ps.True == 0 {
			t.Errorf("missed page %d has zero truth", i)
		}
		if ps.Abit != 0 || ps.Trace != 0 {
			t.Errorf("missed page %d acquired profiler evidence: %+v", i, ps)
		}
		if i > 0 && !PageKeyLess(ep.Pages[i-1].Key, ps.Key) {
			t.Errorf("missed pages not in ascending order at %d: %v then %v",
				i, ep.Pages[i-1].Key, ps.Key)
		}
	}
}

func TestRankedPagesExcludesZeroRankPerMethod(t *testing.T) {
	stats := EpochStats{Pages: []PageStat{
		{Key: PageKey{1, 1}, Abit: 2},            // abit-only
		{Key: PageKey{1, 2}, Trace: 3},           // trace-only
		{Key: PageKey{1, 3}, Abit: 1, Trace: 1},  // both
		{Key: PageKey{1, 4}, Write: 9, True: 42}, // neither: never ranked
	}}
	cases := []struct {
		m    Method
		want []PageKey
	}{
		{MethodAbit, []PageKey{{1, 1}, {1, 3}}},
		{MethodTrace, []PageKey{{1, 2}, {1, 3}}},
		{MethodCombined, []PageKey{{1, 1}, {1, 2}, {1, 3}}},
	}
	for _, c := range cases {
		got := RankedPages(stats, c.m)
		keys := make(map[PageKey]bool, len(got))
		for _, ps := range got {
			keys[ps.Key] = true
		}
		if len(got) != len(c.want) {
			t.Errorf("%v: ranked %d pages, want %d", c.m, len(got), len(c.want))
			continue
		}
		for _, k := range c.want {
			if !keys[k] {
				t.Errorf("%v: page %v missing from ranking", c.m, k)
			}
		}
	}
}

// TestHarvestEpochIntoZeroAllocs pins the steady-state contract the
// placement loop depends on: once the scratch harvest has grown to the
// working-set size, harvesting allocates nothing.
func TestHarvestEpochIntoZeroAllocs(t *testing.T) {
	m := testMachine(t, 64)
	p, err := New(smallConfig(), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Register(1)
	for i := uint64(0); i < 16; i++ {
		if _, err := m.Execute(trace.Ref{PID: 1, VAddr: i * 4096, Kind: trace.Load}); err != nil {
			t.Fatal(err)
		}
	}
	var ep EpochStats
	p.HarvestEpochInto(&ep) // grow the scratch once
	allocs := testing.AllocsPerRun(100, func() {
		// Refresh per-epoch evidence directly (the accelerator path is
		// exercised elsewhere; here only the harvest itself is timed).
		m.Phys.ForEachAllocated(func(pd *mem.PageDescriptor) { pd.AbitEpoch = 1 })
		p.HarvestEpochInto(&ep)
	})
	if allocs != 0 {
		t.Errorf("HarvestEpochInto allocates %.1f allocs/op in steady state, want 0", allocs)
	}
	if len(ep.Pages) != 16 {
		t.Errorf("steady-state harvest saw %d pages, want 16", len(ep.Pages))
	}
}
