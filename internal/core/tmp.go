// Package core implements TMP, the tiered-memory profiler that is the
// paper's primary contribution. TMP combines three monitoring
// mechanisms — trace-based sampling (IBS/PEBS), PTE A-bit scanning,
// and hardware performance counters — into a single vendor-agnostic
// per-page hotness ranking that placement policies consume. The
// profiler is transparent: workloads need no modification; TMP
// observes retirement and page tables from the side, pays its costs in
// virtual time charged to the core running the daemon, and exposes a
// simple ranked-pages interface (§III, §IV step 1).
package core

import (
	"fmt"
	"math/bits"
	"slices"

	"tieredmem/internal/abit"
	"tieredmem/internal/core/pageidx"
	"tieredmem/internal/cpu"
	"tieredmem/internal/devprof"
	"tieredmem/internal/fault"
	"tieredmem/internal/hwpc"
	"tieredmem/internal/ibs"
	"tieredmem/internal/mem"
	"tieredmem/internal/pml"
	"tieredmem/internal/pmu"
	"tieredmem/internal/telemetry"
	"tieredmem/internal/trace"
)

// Method selects which monitoring evidence feeds a hotness rank. The
// paper's Fig. 6 compares the three arms.
type Method int

const (
	// MethodAbit ranks by A-bit observations alone.
	MethodAbit Method = iota
	// MethodTrace ranks by IBS/PEBS samples alone.
	MethodTrace
	// MethodCombined is TMP's rank: the plain sum of every evidence
	// source (§IV step 1 — Fig. 2 shows the event populations are the
	// same order of magnitude, so no source is drowned out). On
	// machines with a device-profiled tier the sum includes the
	// device-side counts; without one the device column is always zero
	// and the rank is exactly the paper's two-source sum.
	MethodCombined
	// MethodDev ranks by device-side (CXL) tracker counts alone — the
	// NeoMem arm. Only meaningful on machines with a device tier and a
	// devprof tracker attached; elsewhere every page ranks zero.
	MethodDev
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodAbit:
		return "abit"
	case MethodTrace:
		return "ibs"
	case MethodCombined:
		return "tmp"
	case MethodDev:
		return "devprof"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Methods lists the paper's ranking arms in presentation order.
// MethodDev is deliberately not here: it only produces evidence on
// machines with a device tier, so the multi-tier experiment cells opt
// into it explicitly instead of every harness iterating a dead arm.
var Methods = []Method{MethodAbit, MethodTrace, MethodCombined}

// PageKey identifies a logical page independent of its current frame,
// so rankings survive migration.
type PageKey struct {
	PID int
	VPN mem.VPN
}

// PageKeyLess is the canonical deterministic page order, (PID, VPN)
// ascending: the tie-break every ranking uses and the iteration order
// order.SortedKeysFunc callers should pin map walks to.
func PageKeyLess(a, b PageKey) bool {
	if a.PID != b.PID {
		return a.PID < b.PID
	}
	return a.VPN < b.VPN
}

// PageKeyCmp is PageKeyLess as a three-way comparison, for
// slices.SortFunc call sites.
func PageKeyCmp(a, b PageKey) int {
	if a.PID != b.PID {
		if a.PID < b.PID {
			return -1
		}
		return 1
	}
	if a.VPN != b.VPN {
		if a.VPN < b.VPN {
			return -1
		}
		return 1
	}
	return 0
}

// PageKeyHash is the hash every pageidx interning table over PageKey
// uses (SplitMix64-style finalizer over the mixed fields). Unseeded on
// purpose: slot placement never orders any output, and a fixed hash
// keeps runs bit-reproducible under debugging.
func PageKeyHash(k PageKey) uint64 {
	x := uint64(k.PID)*0x9E3779B97F4A7C15 + uint64(k.VPN)
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

// PageStat is one page's per-epoch observation record.
type PageStat struct {
	Key   PageKey
	Tier  mem.TierID
	Abit  uint32 // A-bit observations this epoch
	Trace uint32 // IBS/PEBS samples this epoch
	Write uint32 // PML D-bit-set events this epoch (optional extension)
	Dev   uint32 // device-side (CXL) tracker counts this epoch
	True  uint32 // ground-truth memory accesses this epoch (simulator only)
}

// Rank returns the page's hotness under a method.
func (p *PageStat) Rank(m Method) uint64 {
	switch m {
	case MethodAbit:
		return uint64(p.Abit)
	case MethodTrace:
		return uint64(p.Trace)
	case MethodDev:
		return uint64(p.Dev)
	default:
		return uint64(p.Abit) + uint64(p.Trace) + uint64(p.Dev)
	}
}

// UsageFunc reports a process's resource usage as fractions of the
// machine total: CPU share and memory share. The TMP daemon filters
// processes with it (§III-B4, second optimization: profile processes
// with at least 5% CPU or 10% memory).
type UsageFunc func(pid int) (cpuFrac, memFrac float64)

// Config parameterizes TMP.
type Config struct {
	IBS  ibs.Config
	Abit abit.Config
	HWPC hwpc.Config
	// Gating enables the HWPC-driven on/off control of the two
	// expensive mechanisms.
	Gating bool
	// CPUFilterMin and MemFilterMin are the daemon's process-filter
	// thresholds; a process is profiled when either is met.
	CPUFilterMin float64
	MemFilterMin float64
	// FilterInterval is the virtual-ns period between process-filter
	// re-evaluations (the paper re-evaluates once per second).
	FilterInterval int64
	// DaemonCore is the core index that pays profiling costs.
	DaemonCore int
	// EnablePML attaches the Page-Modification Logging engine so
	// harvests also carry per-page write heat (extension; see the
	// pml package).
	EnablePML bool
	// PML configures the engine when EnablePML is set.
	PML pml.Config
	// EnableDevProf attaches the device-side (CXL) hot-page tracker
	// so harvests also carry per-page device counts (the NeoMem arm;
	// see the devprof package). Requires a machine with at least one
	// device-profiled tier.
	EnableDevProf bool
	// DevProf configures the tracker when EnableDevProf is set.
	DevProf devprof.Config
	// QuarantineThreshold is the fault rate (failures over attempts)
	// above which the profiler permanently disables a monitoring
	// mechanism and degrades ranks to the survivors. 0 disables
	// quarantine entirely.
	QuarantineThreshold float64
	// QuarantineMinEvents is the minimum IBS sample-attempt
	// population before its fault rate is judged — small denominators
	// are noise, and quarantine is irreversible.
	QuarantineMinEvents uint64
	// QuarantineMinRounds is the minimum scan/window population
	// before the A-bit and HWPC fault rates are judged.
	QuarantineMinRounds uint64
}

// DefaultConfig returns the paper's production settings at a given IBS
// op period.
func DefaultConfig(ibsPeriod int) Config {
	return Config{
		IBS:                 ibs.DefaultConfig(ibsPeriod),
		Abit:                abit.DefaultConfig(),
		HWPC:                hwpc.DefaultConfig(),
		Gating:              true,
		CPUFilterMin:        0.05,
		MemFilterMin:        0.10,
		FilterInterval:      1_000_000_000,
		DaemonCore:          0,
		PML:                 pml.DefaultConfig(),
		DevProf:             devprof.DefaultConfig(),
		QuarantineThreshold: 0.5,
		QuarantineMinEvents: 200,
		QuarantineMinRounds: 10,
	}
}

// Profiler is the TMP instance bound to one machine.
type Profiler struct {
	cfg     Config
	machine *cpu.Machine

	IBS     *ibs.Engine
	Abit    *abit.Scanner
	Monitor *hwpc.Monitor
	// PML is non-nil when Config.EnablePML is set.
	PML *pml.Engine
	// DevProf is non-nil when Config.EnableDevProf is set.
	DevProf *devprof.Tracker

	usage      UsageFunc
	registered []int // PIDs the daemon was told about
	profiled   []int // PIDs passing the resource filter
	nextFilter int64

	// onSample, when set, observes every delivered trace sample at
	// drain time (experiment harnesses build detection sets and
	// heatmaps with it).
	onSample func(s trace.Sample)

	epoch int

	// Telemetry (nil handles no-op when telemetry is off).
	tel          *telemetry.Tracer
	ctrTicks     *telemetry.Counter
	ctrTickNS    *telemetry.Counter
	ctrProfiled  *telemetry.Counter
	ctrHarvested *telemetry.Counter
}

// SetTracer attaches the telemetry layer to the profiler and all of
// its engines: daemon ticks and filter evaluations emit events here,
// A-bit scans, IBS drains, and HWPC gate decisions in their engines,
// and HarvestEpoch cuts the telemetry epoch. Record-only — the
// profiler behaves identically with telemetry on or off.
func (p *Profiler) SetTracer(t *telemetry.Tracer) {
	p.tel = t
	p.ctrTicks = t.Counter("daemon/ticks")
	p.ctrTickNS = t.Counter("daemon/tick_ns")
	p.ctrProfiled = t.Counter("daemon/profiled_pids")
	p.ctrHarvested = t.Counter("sim/harvested_pages")
	p.IBS.SetTracer(t)
	p.Abit.SetTracer(t)
	p.Monitor.SetTracer(t)
	if p.DevProf != nil {
		p.DevProf.SetTracer(t)
	}
}

// New wires a profiler into a machine. usage may be nil, in which case
// every registered process is profiled (the filter needs usage data).
func New(cfg Config, m *cpu.Machine, usage UsageFunc) (*Profiler, error) {
	eng, err := ibs.New(cfg.IBS, m.Phys)
	if err != nil {
		return nil, err
	}
	sc, err := abit.New(cfg.Abit, m)
	if err != nil {
		return nil, err
	}
	mon, err := hwpc.New(cfg.HWPC, m)
	if err != nil {
		return nil, err
	}
	p := &Profiler{
		cfg:        cfg,
		machine:    m,
		IBS:        eng,
		Abit:       sc,
		Monitor:    mon,
		usage:      usage,
		nextFilter: cfg.FilterInterval,
	}
	// Trace samples accumulate into the page descriptor at drain time
	// (phys_to_page on the sample's physical address, §III-B1).
	eng.SetAccumulator(func(s trace.Sample, pd *mem.PageDescriptor) {
		if pd != nil && pd.TraceEpoch != ^uint32(0) {
			pd.TraceEpoch++
		}
		if p.onSample != nil {
			p.onSample(s)
		}
	})
	m.AddObserver(eng)
	if cfg.EnablePML {
		pe, err := pml.New(cfg.PML, m.Phys)
		if err != nil {
			return nil, err
		}
		p.PML = pe
		m.AddObserver(pe)
	}
	if cfg.EnableDevProf {
		tk, err := devprof.New(cfg.DevProf, m.Phys)
		if err != nil {
			return nil, err
		}
		p.DevProf = tk
		m.AddObserver(tk)
	}
	if cfg.Gating {
		// Trace-based profiling follows LLC misses; A-bit profiling
		// follows TLB misses (§III-A). The device tracker is never
		// gated: observation costs the host nothing, so there is
		// nothing to save by turning it off.
		mon.Gate(pmu.EvLLCMiss, eng)
		mon.Gate(pmu.EvSTLBMiss, sc)
	}
	return p, nil
}

// SetSampleObserver registers a hook that sees every delivered trace
// sample (after page-descriptor accumulation).
func (p *Profiler) SetSampleObserver(fn func(s trace.Sample)) { p.onSample = fn }

// SetFaultPlane attaches the fault-injection plane to every monitoring
// engine the profiler owns. nil (the default) injects nothing.
func (p *Profiler) SetFaultPlane(f *fault.Plane) {
	p.IBS.SetFaultPlane(f)
	p.Abit.SetFaultPlane(f)
	p.Monitor.SetFaultPlane(f)
	if p.DevProf != nil {
		p.DevProf.SetFaultPlane(f)
	}
}

// Register tells the daemon about a program's process (the user adds a
// program; the daemon collects PIDs of everything it forks).
func (p *Profiler) Register(pid int) {
	for _, existing := range p.registered {
		if existing == pid {
			return
		}
	}
	p.registered = append(p.registered, pid)
	p.refilter()
}

// Profiled returns the PIDs currently passing the resource filter.
func (p *Profiler) Profiled() []int { return p.profiled }

// refilter applies the 5% CPU / 10% memory rule.
func (p *Profiler) refilter() {
	p.profiled = p.profiled[:0]
	for _, pid := range p.registered {
		if p.usage == nil {
			p.profiled = append(p.profiled, pid)
			continue
		}
		cpuFrac, memFrac := p.usage(pid)
		if cpuFrac >= p.cfg.CPUFilterMin || memFrac >= p.cfg.MemFilterMin {
			p.profiled = append(p.profiled, pid)
		}
	}
}

// Tick drives the daemon at virtual time now: HWPC gating, periodic
// A-bit scans, and process-filter re-evaluation. All incurred cost is
// charged to the daemon core so profiling overhead shows up in
// end-to-end run time.
func (p *Profiler) Tick(now int64) {
	var cost int64
	if p.cfg.Gating {
		c, _ := p.Monitor.TickIfDue(now)
		cost += c
	}
	if res, ran := p.Abit.ScanIfDue(now, p.profiled); ran {
		cost += res.CostNS
	}
	if now >= p.nextFilter {
		for p.nextFilter <= now {
			p.nextFilter += p.cfg.FilterInterval
		}
		p.refilter()
		p.tel.EmitFilter(now, len(p.profiled), len(p.registered))
	}
	if cost > 0 {
		p.machine.Core(p.cfg.DaemonCore).AdvanceClock(cost)
		// The tick span is the roll-up of everything the daemon core
		// paid this pass (HWPC read + A-bit scan); the per-mechanism
		// spans emitted by the engines break the same time down.
		p.tel.EmitDaemonTick(now, cost)
		if p.tel.Enabled() {
			p.ctrTicks.Add(1)
			p.ctrTickNS.AddNS(cost)
			p.ctrProfiled.Set(uint64(len(p.profiled)))
		}
	}
}

// EpochStats is the harvest of one epoch.
type EpochStats struct {
	Epoch int
	Pages []PageStat
}

// HarvestEpoch flushes pending trace samples, snapshots every
// allocated page's epoch counters, resets them, and advances the epoch
// index. This is the profiler-policy interface: the policy engine sees
// ranked pages, not monitoring detail. The returned harvest owns its
// backing array; callers that drop the harvest every epoch should use
// HarvestEpochInto instead, which recycles one.
func (p *Profiler) HarvestEpoch() EpochStats {
	var stats EpochStats
	p.HarvestEpochInto(&stats)
	return stats
}

// HarvestEpochInto is the allocation-free harvest: dst.Pages is
// truncated and refilled in place, so a caller that reuses one
// EpochStats across epochs (the placement loop) pays zero allocations
// per epoch in steady state — pinned by testing.AllocsPerRun. The
// snapshot and the epoch-counter reset happen in one pass over the
// allocated-PFN span instead of the two full-descriptor walks the
// harvest used to make. dst must not be retained across calls by
// anything downstream; harvests that are kept (sim.Run's Epochs
// slice) go through HarvestEpoch, which hands out a fresh array.
func (p *Profiler) HarvestEpochInto(dst *EpochStats) {
	p.IBS.FlushAt(p.machine.Now())
	if p.PML != nil {
		p.PML.Flush()
	}
	if p.DevProf != nil {
		// A faulted flush (overflow/stale) degrades this epoch's device
		// evidence; the tracker's stats carry the loss and quarantine
		// judges it below, so the harvest itself needs no recovery.
		p.DevProf.FlushAt(p.machine.Now()) //nolint:errcheck
	}
	dst.Epoch = p.epoch
	dst.Pages = dst.Pages[:0]
	p.machine.Phys.ForEachAllocated(func(pd *mem.PageDescriptor) {
		if pd.AbitEpoch == 0 && pd.TraceEpoch == 0 && pd.WriteEpoch == 0 && pd.DevEpoch == 0 && pd.TrueEpoch == 0 {
			return
		}
		dst.Pages = append(dst.Pages, PageStat{
			Key:   PageKey{PID: pd.PID, VPN: pd.VPage},
			Tier:  pd.Tier,
			Abit:  pd.AbitEpoch,
			Trace: pd.TraceEpoch,
			Write: pd.WriteEpoch,
			Dev:   pd.DevEpoch,
			True:  pd.TrueEpoch,
		})
		// Folding the epoch counters into the totals here (rather
		// than in a second ResetEpochAll pass) is safe because the
		// fold is a no-op on pages with all-zero epoch counters —
		// the ones the harvest skips.
		pd.ResetEpoch()
	})
	p.epoch++
	p.checkQuarantine(p.machine.Now())
	if p.tel.Enabled() {
		p.ctrHarvested.Add(uint64(len(dst.Pages)))
		p.tel.CutEpoch(p.machine.Now(), len(dst.Pages))
	}
}

// checkQuarantine judges each mechanism's fault rate at the epoch
// boundary and permanently disables any whose failures exceed the
// threshold — the profiler would rather run on one clean evidence
// source than blend in a corrupt one. Judged in a fixed order (ibs,
// abit, hwpc, devprof) so a run's quarantine sequence is deterministic.
func (p *Profiler) checkQuarantine(now int64) {
	thr := p.cfg.QuarantineThreshold
	if thr <= 0 {
		return
	}
	if !p.IBS.Quarantined() {
		if lost, attempts := p.IBS.Stats().FaultRate(); attempts >= p.cfg.QuarantineMinEvents && float64(lost) > thr*float64(attempts) {
			p.IBS.Quarantine()
			p.tel.EmitQuarantine(now, "ibs", lost, attempts)
		}
	}
	if !p.Abit.Quarantined() {
		if failures, attempts := p.Abit.Stats().FaultRate(); attempts >= p.cfg.QuarantineMinRounds && float64(failures) > thr*float64(attempts) {
			p.Abit.Quarantine()
			p.tel.EmitQuarantine(now, "abit", failures, attempts)
		}
	}
	if !p.Monitor.Quarantined() {
		if failures, attempts := p.Monitor.FaultRate(); attempts >= p.cfg.QuarantineMinRounds && float64(failures) > thr*float64(attempts) {
			p.Monitor.Quarantine()
			p.tel.EmitQuarantine(now, "hwpc", failures, attempts)
		}
	}
	if p.DevProf != nil && !p.DevProf.Quarantined() {
		// The device stream is sample-shaped like IBS (per-observation
		// counts, not per-round scans), so it is judged against the
		// event-population floor.
		if lost, attempts := p.DevProf.Stats().FaultRate(); attempts >= p.cfg.QuarantineMinEvents && float64(lost) > thr*float64(attempts) {
			p.DevProf.Quarantine()
			p.tel.EmitQuarantine(now, "devprof", lost, attempts)
		}
	}
}

// EffectiveMethod degrades a requested ranking method to the surviving
// evidence source when quarantine has removed one: tmp falls back to
// the clean arm, and a single-arm method whose mechanism is gone falls
// back to the other. A devprof request on a machine whose tracker is
// quarantined (or was never attached) degrades to the combined host
// rank first, then through the host rules. With every source
// quarantined there is nothing better to offer and the request passes
// through unchanged.
func (p *Profiler) EffectiveMethod(m Method) Method {
	if m == MethodDev && (p.DevProf == nil || p.DevProf.Quarantined()) {
		m = MethodCombined
	}
	ibsOut, abitOut := p.IBS.Quarantined(), p.Abit.Quarantined()
	switch {
	case ibsOut && abitOut:
		return m
	case ibsOut && (m == MethodTrace || m == MethodCombined):
		return MethodAbit
	case abitOut && (m == MethodAbit || m == MethodCombined):
		return MethodTrace
	}
	return m
}

// QuarantinedMechanisms lists the permanently disabled mechanisms in
// fixed (ibs, abit, hwpc, devprof) order, for reports.
func (p *Profiler) QuarantinedMechanisms() []string {
	var out []string
	if p.IBS.Quarantined() {
		out = append(out, "ibs")
	}
	if p.Abit.Quarantined() {
		out = append(out, "abit")
	}
	if p.Monitor.Quarantined() {
		out = append(out, "hwpc")
	}
	if p.DevProf != nil && p.DevProf.Quarantined() {
		out = append(out, "devprof")
	}
	return out
}

// Epoch returns the index of the epoch currently being collected.
func (p *Profiler) Epoch() int { return p.epoch }

// RankedPages sorts a harvest by descending hotness under a method.
// Rank ties are broken in favour of pages already resident in the fast
// tier — A-bit evidence is at most one observation per scan, so large
// tie groups are common, and preferring residents is the hysteresis
// that "eliminates excessive migration" (§II-A); remaining ties order
// deterministically by (PID, VPN). The order is RankLess, the one
// comparator every selector shares. Pages with zero rank under the
// method are excluded — the profiler never saw them. Callers that
// only consume a prefix should use TopK, which produces the same
// prefix without sorting the whole harvest.
func RankedPages(stats EpochStats, m Method) []PageStat {
	out := make([]PageStat, 0, len(stats.Pages))
	for _, ps := range stats.Pages {
		if ps.Rank(m) > 0 {
			out = append(out, ps)
		}
	}
	// Sort packed keys, not 48-byte PageStats: a page's position under
	// RankCmp is (rank descending, slow-tier bit, PID, VPN), and when
	// those fields' bit-widths fit one machine word — every realistic
	// harvest — the whole order packs into a single uint64 per page,
	// precomputed once, so the sort pays one integer compare per pair
	// instead of re-deriving Rank() and walking the tie-break chain.
	// Keys are unique (distinct pages), so the packed word alone is a
	// total order and the differential tests (TopK == RankedPages for
	// every method and tie shape) pin the encoding to RankCmp.
	var maxRank, maxPID, maxVPN uint64
	negPID := false
	for i := range out {
		if r := out[i].Rank(m); r > maxRank {
			maxRank = r
		}
		if out[i].Key.PID < 0 {
			negPID = true
		} else if p := uint64(out[i].Key.PID); p > maxPID {
			maxPID = p
		}
		if v := uint64(out[i].Key.VPN); v > maxVPN {
			maxVPN = v
		}
	}
	pidBits, vpnBits := bits.Len64(maxPID), bits.Len64(maxVPN)
	if !negPID && bits.Len64(maxRank)+1+pidBits+vpnBits <= 64 {
		type pk struct {
			key uint64
			idx int32
		}
		keys := make([]pk, len(out))
		for i := range out {
			k := (maxRank-out[i].Rank(m))<<(1+pidBits+vpnBits) |
				uint64(out[i].Key.PID)<<vpnBits |
				uint64(out[i].Key.VPN)
			if out[i].Tier != mem.FastTier {
				k |= 1 << (pidBits + vpnBits)
			}
			keys[i] = pk{key: k, idx: int32(i)}
		}
		slices.SortFunc(keys, func(a, b pk) int {
			if a.key < b.key {
				return -1
			}
			if a.key > b.key {
				return 1
			}
			return 0
		})
		res := make([]PageStat, len(out))
		for i := range keys {
			res[i] = out[keys[i].idx]
		}
		return res
	}
	// Degenerate field ranges (wild VPNs, negative PIDs): comparator
	// sort on the canonical order directly.
	slices.SortFunc(out, func(a, b PageStat) int { return statCmp(&a, &b, m) })
	return out
}

// SumEpochs merges per-epoch harvests into one cumulative harvest:
// counters add per page, the latest observed tier wins, and the merged
// pages come out in canonical (PID, VPN) order. This is the sanctioned
// way to aggregate PageStat counters outside the profiler arms — the
// tmplint epochaccount analyzer rejects open-coded counter writes.
// Accumulation is dense: each distinct page interns to a uint32 id
// once (pageidx) and every later observation is a slice-indexed add,
// instead of the map[PageKey]PageStat copy-out/copy-in per
// observation the merge used to make.
func SumEpochs(epochs []EpochStats) EpochStats {
	// Size for the distinct-page count, which is at least the largest
	// single epoch — NOT the sum of epoch sizes: consecutive harvests
	// mostly re-observe the same working set, and a sum-sized map
	// would allocate (and fault in) an order of magnitude more buckets
	// than ever fill.
	hint := 0
	for _, ep := range epochs {
		if len(ep.Pages) > hint {
			hint = len(ep.Pages)
		}
	}
	tab := pageidx.New(hint, PageKeyHash)
	acc := make([]PageStat, 0, hint)
	for _, ep := range epochs {
		for i := range ep.Pages {
			ps := &ep.Pages[i]
			id := tab.Intern(ps.Key)
			if int(id) == len(acc) {
				acc = append(acc, PageStat{Key: ps.Key})
			}
			t := &acc[id]
			t.Tier = ps.Tier // last placement wins
			t.Abit += ps.Abit
			t.Trace += ps.Trace
			t.Write += ps.Write
			t.Dev += ps.Dev
			t.True += ps.True
		}
	}
	// Ids are first-seen order; one sort pins the canonical output.
	slices.SortFunc(acc, func(a, b PageStat) int { return PageKeyCmp(a.Key, b.Key) })
	return EpochStats{Pages: acc}
}

// AttachTruth merges the machine's per-page ground truth into a
// harvest: observed pages get their True counts (and current tier),
// and memory-accessed pages the profiler missed are appended in
// ascending-PFN order — hitrate denominators need them. Harvests from
// profilers that bypass the TMP daemon (AutoNUMA, BadgerTrap
// baselines) call this before evaluation.
func AttachTruth(phys *mem.PhysMem, ep *EpochStats) {
	// The observed pages intern in slice order, so an id doubles as
	// the page's index into ep.Pages.
	tab := pageidx.New(len(ep.Pages), PageKeyHash)
	for i := range ep.Pages {
		tab.Intern(ep.Pages[i].Key)
	}
	observed := len(ep.Pages)
	phys.ForEachAllocated(func(pd *mem.PageDescriptor) {
		key := PageKey{PID: pd.PID, VPN: pd.VPage}
		if id, ok := tab.Lookup(key); ok && int(id) < observed {
			ep.Pages[id].True = pd.TrueEpoch
			ep.Pages[id].Tier = pd.Tier
			return
		}
		if pd.TrueEpoch > 0 {
			ep.Pages = append(ep.Pages, PageStat{
				Key:  key,
				Tier: pd.Tier,
				True: pd.TrueEpoch,
			})
		}
	})
}

// OverheadNS returns total profiling overhead charged so far, split by
// mechanism.
func (p *Profiler) OverheadNS() (ibsNS, abitNS, hwpcNS int64) {
	return p.IBS.Stats().OverheadNS, p.Abit.Stats().OverheadNS, p.Monitor.OverheadNS
}
