package core

import (
	"slices"

	"tieredmem/internal/core/pageidx"
)

// Merger is the deterministic reduce at the heart of the sharded epoch
// pipeline: it fuses per-shard harvests of the same epoch into one
// EpochStats exactly as if a single profiler had observed the whole
// machine. Shards are walked in shard-index order (never completion
// order) and pages are interned into a dense id space, so the
// accumulation order — and therefore every downstream tie-break — is a
// pure function of the shard streams; the final canonical (PID, VPN)
// sort pins the output independently of id assignment. A Merger owns
// reusable scratch (the interning table), making steady-state merges
// allocation-free once warm — the same recycle discipline as
// HarvestEpochInto, pinned by testing.AllocsPerRun.
//
// Shards of the sharded pipeline observe disjoint page sets (each cell
// owns its processes' address spaces), but Merge does not require
// that: overlapping keys accumulate counters with last-shard tier
// winning, the SumEpochs rule.
type Merger struct {
	tab *pageidx.Table[PageKey]
}

// NewMerger returns a Merger with scratch sized for hint distinct
// pages per merge.
func NewMerger(hint int) *Merger {
	return &Merger{tab: pageidx.New(hint, PageKeyHash)}
}

// Merge fuses the shard harvests into dst. dst.Pages is truncated and
// refilled in place (zero allocations once its capacity and the
// interning table have grown to the working-set size); dst.Epoch is
// taken from the first shard, which the sharded pipeline keeps aligned
// across shards by cutting epochs on the same virtual-time boundary.
func (m *Merger) Merge(dst *EpochStats, shards []EpochStats) {
	m.tab.Reset()
	dst.Epoch = 0
	if len(shards) > 0 {
		dst.Epoch = shards[0].Epoch
	}
	dst.Pages = dst.Pages[:0]
	for si := range shards {
		pages := shards[si].Pages
		for i := range pages {
			ps := &pages[i]
			id := m.tab.Intern(ps.Key)
			if int(id) == len(dst.Pages) {
				dst.Pages = append(dst.Pages, PageStat{Key: ps.Key})
			}
			t := &dst.Pages[id]
			t.Tier = ps.Tier // last shard to place the page wins
			t.Abit += ps.Abit
			t.Trace += ps.Trace
			t.Write += ps.Write
			t.Dev += ps.Dev
			t.True += ps.True
		}
	}
	// Ids are first-seen order across the shard walk; the canonical
	// sort erases even that, so shard boundaries never leak into
	// ranks, mover inputs, or serialized output.
	slices.SortFunc(dst.Pages, func(a, b PageStat) int { return PageKeyCmp(a.Key, b.Key) })
}

// MergeHarvests fuses per-shard harvests of one epoch into a fresh
// EpochStats. Callers merging every epoch should hold a Merger and
// call Merge to recycle the scratch.
func MergeHarvests(shards []EpochStats) EpochStats {
	hint := 0
	for i := range shards {
		hint += len(shards[i].Pages)
	}
	var out EpochStats
	NewMerger(hint).Merge(&out, shards)
	return out
}

// SumShardEpochs is the shard-aware SumEpochs: it folds each shard's
// whole epoch sequence, walking shards in index order, and returns the
// same totals SumEpochs would produce on the concatenated sequence —
// the run-level aggregate consumers (hit-rate tables, truth
// attachment) use on sharded results.
func SumShardEpochs(shards [][]EpochStats) EpochStats {
	hint := 0
	for _, epochs := range shards {
		for i := range epochs {
			if len(epochs[i].Pages) > hint {
				hint = len(epochs[i].Pages)
			}
		}
	}
	tab := pageidx.New(hint, PageKeyHash)
	acc := make([]PageStat, 0, hint)
	for _, epochs := range shards {
		for _, ep := range epochs {
			for i := range ep.Pages {
				ps := &ep.Pages[i]
				id := tab.Intern(ps.Key)
				if int(id) == len(acc) {
					acc = append(acc, PageStat{Key: ps.Key})
				}
				t := &acc[id]
				t.Tier = ps.Tier
				t.Abit += ps.Abit
				t.Trace += ps.Trace
				t.Write += ps.Write
				t.Dev += ps.Dev
				t.True += ps.True
			}
		}
	}
	slices.SortFunc(acc, func(a, b PageStat) int { return PageKeyCmp(a.Key, b.Key) })
	return EpochStats{Pages: acc}
}
