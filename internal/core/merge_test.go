package core

import (
	"math/rand"
	"reflect"
	"testing"

	"tieredmem/internal/mem"
)

// shardFixture builds deterministic per-shard harvests with optional
// key overlap across shards.
func shardFixture(shards, pagesPer int, overlap bool) []EpochStats {
	rng := rand.New(rand.NewSource(7))
	out := make([]EpochStats, shards)
	for s := range out {
		out[s].Epoch = 3
		pid := 100 + s
		if overlap {
			pid = 100 + s%2
		}
		for p := 0; p < pagesPer; p++ {
			out[s].Pages = append(out[s].Pages, PageStat{
				Key:   PageKey{PID: pid, VPN: mem.VPN(rng.Intn(pagesPer * 2))},
				Tier:  mem.TierID(s % 3),
				Abit:  uint32(rng.Intn(4)),
				Trace: uint32(rng.Intn(16)),
				Write: uint32(rng.Intn(8)),
				Dev:   uint32(rng.Intn(8)),
				True:  uint32(rng.Intn(32)),
			})
		}
	}
	return out
}

// TestMergeHarvestsEqualsSumEpochs pins the semantics: merging shard
// harvests of one epoch must equal SumEpochs over the same harvests —
// same keys, same counter totals, same canonical order — for both
// disjoint (the sharded pipeline's case) and overlapping key sets.
func TestMergeHarvestsEqualsSumEpochs(t *testing.T) {
	for _, overlap := range []bool{false, true} {
		shards := shardFixture(4, 64, overlap)
		got := MergeHarvests(shards)
		want := SumEpochs(shards)
		if got.Epoch != 3 {
			t.Fatalf("overlap=%v: merged epoch %d, want 3", overlap, got.Epoch)
		}
		if !reflect.DeepEqual(got.Pages, want.Pages) {
			t.Fatalf("overlap=%v: MergeHarvests diverges from SumEpochs\n got %v\nwant %v", overlap, got.Pages[:4], want.Pages[:4])
		}
	}
}

// TestMergeShardOrderNotCompletionOrder pins the deterministic-reduce
// rule: the result depends on shard index order, so permuting the
// shard slice must change nothing except via the documented
// last-shard-tier-wins rule — and with disjoint shards, nothing at
// all.
func TestMergeShardOrderNotCompletionOrder(t *testing.T) {
	shards := shardFixture(4, 64, false)
	a := MergeHarvests(shards)
	rev := []EpochStats{shards[3], shards[2], shards[1], shards[0]}
	b := MergeHarvests(rev)
	if !reflect.DeepEqual(a.Pages, b.Pages) {
		t.Fatal("disjoint shards: merge result depends on shard order")
	}
}

// TestMergerRecycles pins that a recycled Merger produces identical
// output to a fresh one and that empty input resets dst.
func TestMergerRecycles(t *testing.T) {
	m := NewMerger(16)
	var dst EpochStats
	shards := shardFixture(3, 32, false)
	m.Merge(&dst, shards)
	want := MergeHarvests(shards)
	if !reflect.DeepEqual(dst.Pages, want.Pages) {
		t.Fatal("recycled Merger diverges from fresh merge")
	}
	other := shardFixture(2, 8, true)
	m.Merge(&dst, other)
	if !reflect.DeepEqual(dst.Pages, MergeHarvests(other).Pages) {
		t.Fatal("second Merge on recycled Merger diverges")
	}
	m.Merge(&dst, nil)
	if len(dst.Pages) != 0 || dst.Epoch != 0 {
		t.Fatalf("Merge(nil) left dst non-empty: %d pages epoch %d", len(dst.Pages), dst.Epoch)
	}
}

// TestMergeSteadyStateZeroAlloc is the sharded pipeline's alloc pin:
// once the Merger and dst have warmed to the working-set size, a merge
// allocates nothing — the per-epoch reduce rides the same zero-alloc
// contract as HarvestEpochInto.
func TestMergeSteadyStateZeroAlloc(t *testing.T) {
	shards := shardFixture(8, 256, false)
	m := NewMerger(8 * 256)
	var dst EpochStats
	m.Merge(&dst, shards) // warm table + dst capacity
	allocs := testing.AllocsPerRun(10, func() {
		m.Merge(&dst, shards)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Merge allocates %v allocs/op, want 0", allocs)
	}
}

// TestSumShardEpochsEqualsConcat pins the shard-aware run aggregate:
// folding per-shard epoch sequences shard-by-shard must equal
// SumEpochs on the concatenation in shard order.
func TestSumShardEpochsEqualsConcat(t *testing.T) {
	byShard := [][]EpochStats{
		shardFixture(1, 40, false),
		shardFixture(2, 30, true),
		nil,
		shardFixture(3, 20, false),
	}
	var flat []EpochStats
	for _, s := range byShard {
		flat = append(flat, s...)
	}
	got := SumShardEpochs(byShard)
	want := SumEpochs(flat)
	if !reflect.DeepEqual(got.Pages, want.Pages) {
		t.Fatal("SumShardEpochs diverges from SumEpochs(concat)")
	}
}
