package core

import (
	"testing"

	"tieredmem/internal/cache"
	"tieredmem/internal/cpu"
	"tieredmem/internal/fault"
	"tieredmem/internal/mem"
	"tieredmem/internal/telemetry"
	"tieredmem/internal/tlb"
	"tieredmem/internal/trace"
)

// deviceTestMachine builds a machine whose middle tier is a
// device-profiled CXL expander; the tiny top tier forces most
// first-touch allocations down into it.
func deviceTestMachine(t *testing.T) *cpu.Machine {
	t.Helper()
	chain, err := mem.ParseTierChain("dram:4/cxl:60/nvm:64")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.DefaultConfig()
	cfg.Cores = 2
	cfg.PrefetchDegree = 0
	cfg.L1D = cache.Config{SizeBytes: 4 << 10, Ways: 2}
	cfg.L2 = cache.Config{SizeBytes: 16 << 10, Ways: 4}
	cfg.LLC = cache.Config{SizeBytes: 64 << 10, Ways: 4}
	cfg.L1TLB = tlb.Config{Entries: 16, Ways: 4}
	cfg.L2TLB = tlb.Config{Entries: 64, Ways: 4}
	m, err := cpu.NewMachine(cfg, chain)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMethodDevString(t *testing.T) {
	if MethodDev.String() != "devprof" {
		t.Errorf("MethodDev.String() = %q", MethodDev.String())
	}
}

func TestRankIncludesDeviceColumn(t *testing.T) {
	ps := PageStat{Abit: 2, Trace: 3, Dev: 4}
	if ps.Rank(MethodDev) != 4 {
		t.Errorf("Rank(devprof) = %d, want 4", ps.Rank(MethodDev))
	}
	if ps.Rank(MethodCombined) != 9 {
		t.Errorf("Rank(tmp) = %d, want abit+ibs+dev = 9", ps.Rank(MethodCombined))
	}
}

// TestEffectiveMethodDevFallsBackWithoutTracker pins the no-device
// degradation: asking for device-only evidence on a machine with no
// tracker falls back to the combined rank instead of ranking every
// page zero.
func TestEffectiveMethodDevFallsBackWithoutTracker(t *testing.T) {
	m := testMachine(t, 64)
	p, _ := New(smallConfig(), m, nil)
	if got := p.EffectiveMethod(MethodDev); got != MethodCombined {
		t.Errorf("EffectiveMethod(devprof) = %v without a tracker, want tmp", got)
	}
}

// TestQuarantineDevprofDegradesToCombined drives the device tracker's
// fault rate to 100% and checks the profiler quarantines it exactly
// like a host mechanism: sticky, reported, event-logged, and degraded
// to the combined host rank — with the host mechanisms untouched.
func TestQuarantineDevprofDegradesToCombined(t *testing.T) {
	m := deviceTestMachine(t)
	cfg := smallConfig()
	cfg.EnableDevProf = true
	cfg.Gating = false
	cfg.QuarantineMinEvents = 8
	p, err := New(cfg, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Register(1)
	spec, err := fault.ParseSpec("devprof.overflow=1")
	if err != nil {
		t.Fatal(err)
	}
	p.SetFaultPlane(fault.New(spec, 1))
	tr := telemetry.New()
	p.SetTracer(tr)
	// Distinct first-touch pages: 4 land in dram, the rest in the
	// device tier, so the tracker stages well past MinEvents before
	// the epoch flush — which the plane makes overflow, losing all.
	for i := uint64(0); i < 32; i++ {
		m.Execute(trace.Ref{PID: 1, VAddr: i * 4096, Kind: trace.Load})
	}
	p.HarvestEpoch()
	if p.DevProf == nil || !p.DevProf.Quarantined() {
		t.Fatalf("100%%-lossy device flush not quarantined (stats=%+v)", p.DevProf.Stats())
	}
	if got := p.EffectiveMethod(MethodDev); got != MethodCombined {
		t.Errorf("EffectiveMethod(devprof) = %v after quarantine, want tmp", got)
	}
	if got := p.EffectiveMethod(MethodCombined); got != MethodCombined {
		t.Errorf("EffectiveMethod(tmp) = %v; host mechanisms must be untouched", got)
	}
	if qs := p.QuarantinedMechanisms(); len(qs) != 1 || qs[0] != "devprof" {
		t.Errorf("QuarantinedMechanisms = %v, want [devprof]", qs)
	}
	found := false
	for _, e := range tr.Events() {
		if e.Kind == telemetry.KindQuarantine && e.Name == "devprof" {
			found = true
			if e.A == 0 || e.B == 0 {
				t.Errorf("quarantine event has empty evidence: %+v", e)
			}
		}
	}
	if !found {
		t.Errorf("no KindQuarantine event emitted for devprof")
	}
}
