package pageidx

import "testing"

type key struct{ a, b int }

// badHash maps everything to two buckets — probing and growth must
// still produce correct assignments.
func badHash(k key) uint64 { return uint64(k.a) & 1 }

func goodHash(k key) uint64 {
	x := uint64(k.a)*0x9E3779B97F4A7C15 + uint64(k.b)
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return x
}

func TestInternAssignsDenseFirstSeenIDs(t *testing.T) {
	tab := New(4, goodHash)
	ks := []key{{2, 9}, {1, 1}, {2, 9}, {3, 3}, {1, 1}}
	want := []uint32{0, 1, 0, 2, 1}
	for i, k := range ks {
		if id := tab.Intern(k); id != want[i] {
			t.Errorf("Intern(%v) = %d, want %d", k, id, want[i])
		}
	}
	if tab.Len() != 3 {
		t.Errorf("Len = %d, want 3", tab.Len())
	}
}

func TestLookupDoesNotIntern(t *testing.T) {
	tab := New(0, goodHash)
	if _, ok := tab.Lookup(key{1, 2}); ok {
		t.Fatal("Lookup found a never-interned key")
	}
	if tab.Len() != 0 {
		t.Errorf("Lookup interned: Len = %d", tab.Len())
	}
	id := tab.Intern(key{1, 2})
	got, ok := tab.Lookup(key{1, 2})
	if !ok || got != id {
		t.Errorf("Lookup = (%d, %v), want (%d, true)", got, ok, id)
	}
}

func TestKeyReversesIntern(t *testing.T) {
	tab := New(2, goodHash)
	for i := 0; i < 5; i++ {
		k := key{i, i * i}
		if got := tab.Key(tab.Intern(k)); got != k {
			t.Errorf("Key(Intern(%v)) = %v", k, got)
		}
	}
}

func TestResetKeepsTableUsable(t *testing.T) {
	tab := New(2, goodHash)
	tab.Intern(key{1, 1})
	tab.Intern(key{2, 2})
	tab.Reset()
	if tab.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tab.Len())
	}
	if _, ok := tab.Lookup(key{1, 1}); ok {
		t.Error("stale assignment survived Reset")
	}
	// Fresh ids restart at 0.
	if id := tab.Intern(key{2, 2}); id != 0 {
		t.Errorf("first id after Reset = %d, want 0", id)
	}
}

func TestNilTableLookupAndLen(t *testing.T) {
	var tab *Table[key]
	if _, ok := tab.Lookup(key{1, 1}); ok {
		t.Error("nil table Lookup reported found")
	}
	if tab.Len() != 0 {
		t.Errorf("nil table Len = %d", tab.Len())
	}
}

// TestManyKeysForcesGrowth interns past the initial capacity with an
// adversarial hash and checks every id round-trips.
func TestManyKeysForcesGrowth(t *testing.T) {
	for _, hash := range []func(key) uint64{goodHash, badHash} {
		tab := New(1, hash)
		const n = 1000
		ids := make([]uint32, n)
		for i := 0; i < n; i++ {
			ids[i] = tab.Intern(key{i % 7, i})
		}
		if tab.Len() != n {
			t.Fatalf("Len = %d, want %d", tab.Len(), n)
		}
		for i := 0; i < n; i++ {
			if ids[i] != uint32(i) {
				t.Fatalf("id %d assigned %d, want first-seen order", i, ids[i])
			}
			if got, ok := tab.Lookup(key{i % 7, i}); !ok || got != ids[i] {
				t.Fatalf("Lookup(%d) = (%d, %v), want (%d, true)", i, got, ok, ids[i])
			}
			if k := tab.Key(ids[i]); k != (key{i % 7, i}) {
				t.Fatalf("Key(%d) = %v", ids[i], k)
			}
		}
	}
}
