// Package pageidx provides the dense interning table behind the
// profiler's aggregation spine. Per-page state in the hot path —
// epoch sums, hotness ranks, truth attachment — used to live in
// map[PageKey]PageStat tables that were rebuilt every epoch; pageidx
// replaces them with a stable PageKey -> dense uint32 id assignment so
// accumulation becomes a slice index instead of a map insert, and the
// id space doubles as the index of any parallel []uint64 / []PageStat
// column.
//
// The table is open-addressed (linear probing, power-of-two slots,
// caller-supplied hash) rather than a Go map: one probe sequence both
// finds an existing key and claims the insertion slot on a miss, and
// the hot loop avoids the runtime map's per-call hashing interface.
//
// Determinism: ids are assigned in first-Intern order (append-only),
// so the same observation stream always produces the same id
// assignment — the hash only places keys in slots, it never orders
// output. Consumers that need canonical (PID, VPN) output order sort
// the ids once at emission time — never by iterating a table.
package pageidx

// Table interns keys of any comparable type into dense uint32 ids:
// the first distinct key interned gets id 0, the next id 1, and so
// on. The reverse mapping (id -> key) is an append-only slice, so
// holding an id is as good as holding the key and a whole column of
// per-key state can be a plain slice indexed by id.
type Table[K comparable] struct {
	hash  func(K) uint64
	slots []uint32 // id+1 of the resident key; 0 marks an empty slot
	mask  uint64   // len(slots)-1; len is always a power of two
	keys  []K
}

// New returns a table with capacity preallocated for n distinct keys,
// using hash to place keys in slots. hash must be a pure function of
// the key; quality matters (clustered hashes degrade probing to
// linear scans) but seeding does not — slot placement never leaks
// into any output order.
func New[K comparable](n int, hash func(K) uint64) *Table[K] {
	if n < 0 {
		n = 0
	}
	size := uint64(16)
	// Size for load factor <= 1/2 at n keys.
	for size < uint64(n)*2 {
		size *= 2
	}
	return &Table[K]{
		hash:  hash,
		slots: make([]uint32, size),
		mask:  size - 1,
		keys:  make([]K, 0, n),
	}
}

// Intern returns the dense id of k, assigning the next free id when k
// has not been seen before.
func (t *Table[K]) Intern(k K) uint32 {
	i := t.hash(k) & t.mask
	for {
		s := t.slots[i]
		if s == 0 {
			id := uint32(len(t.keys))
			t.keys = append(t.keys, k)
			t.slots[i] = id + 1
			if uint64(len(t.keys))*2 > uint64(len(t.slots)) {
				t.grow()
			}
			return id
		}
		if t.keys[s-1] == k {
			return s - 1
		}
		i = (i + 1) & t.mask
	}
}

// grow doubles the slot array and rehashes every interned key; ids
// are untouched.
func (t *Table[K]) grow() {
	size := uint64(len(t.slots)) * 2
	t.slots = make([]uint32, size)
	t.mask = size - 1
	for id := range t.keys {
		i := t.hash(t.keys[id]) & t.mask
		for t.slots[i] != 0 {
			i = (i + 1) & t.mask
		}
		t.slots[i] = uint32(id) + 1
	}
}

// Lookup returns the id of k without interning. It is safe on a nil
// table (reporting not-found), so zero-value wrappers stay usable.
func (t *Table[K]) Lookup(k K) (uint32, bool) {
	if t == nil {
		return 0, false
	}
	i := t.hash(k) & t.mask
	for {
		s := t.slots[i]
		if s == 0 {
			return 0, false
		}
		if t.keys[s-1] == k {
			return s - 1, true
		}
		i = (i + 1) & t.mask
	}
}

// Key returns the key assigned to id. It panics when id was never
// assigned, like an out-of-range slice index.
func (t *Table[K]) Key(id uint32) K { return t.keys[id] }

// Len returns the number of distinct keys interned.
func (t *Table[K]) Len() int {
	if t == nil {
		return 0
	}
	return len(t.keys)
}

// Reset forgets every assignment while keeping the allocated
// capacity, so epoch-scoped tables can be recycled without churning
// the allocator.
func (t *Table[K]) Reset() {
	clear(t.slots)
	t.keys = t.keys[:0]
}
