package core

// The ranking spine: one deterministic comparator (RankLess) shared
// by every selector in the repo, bounded top-K selection so policies
// stop paying for full sorts of harvests they truncate anyway, and
// the dense Ranks table the page mover reads. Keeping all rank
// comparisons in this file is a determinism guarantee, not a style
// choice: four packages used to hand-copy the tie-break and a drift
// in any copy would have silently diverged selections (the
// same-seed-same-ranks contract tmplint enforces assumes they agree).

import (
	"sort"

	"tieredmem/internal/core/pageidx"
	"tieredmem/internal/mem"
)

// RankCmp is the canonical hotness order every selector uses, as a
// three-way comparison: rank descending, then fast-tier residents
// first (the hysteresis that "eliminates excessive migration", §II-A —
// A-bit evidence is at most one observation per scan, so large tie
// groups are common), then (PID, VPN) ascending. Scores are float64 so
// the float-scored policies (Decay, Predictor, WriteBiased) share the
// same comparator as the integer ranks, which stay exact well below
// 2^53. The order is total whenever keys are distinct, which is what
// makes bounded selection (TopK) reproduce a full sort exactly.
func RankCmp(ra, rb float64, fastA, fastB bool, ka, kb PageKey) int {
	if ra != rb {
		if ra > rb {
			return -1
		}
		return 1
	}
	if fastA != fastB {
		if fastA {
			return -1
		}
		return 1
	}
	if ka.PID != kb.PID {
		if ka.PID < kb.PID {
			return -1
		}
		return 1
	}
	if ka.VPN != kb.VPN {
		if ka.VPN < kb.VPN {
			return -1
		}
		return 1
	}
	return 0
}

// RankLess is RankCmp as a less-function, for heap and sort.Slice
// call sites.
func RankLess(ra, rb float64, fastA, fastB bool, ka, kb PageKey) bool {
	return RankCmp(ra, rb, fastA, fastB, ka, kb) < 0
}

// ColdestLess orders coldest-first with the same canonical (PID, VPN)
// tie-break; the mover demotes in this order. Implemented as RankLess
// with the ranks swapped so the two orders can never drift.
func ColdestLess(ra, rb uint64, ka, kb PageKey) bool {
	return RankLess(float64(rb), float64(ra), false, false, ka, kb)
}

// statCmp applies RankCmp to two PageStats under a method.
func statCmp(a, b *PageStat, m Method) int {
	return RankCmp(float64(a.Rank(m)), float64(b.Rank(m)),
		a.Tier == mem.FastTier, b.Tier == mem.FastTier, a.Key, b.Key)
}

// statLess applies RankLess to two PageStats under a method.
func statLess(a, b *PageStat, m Method) bool { return statCmp(a, b, m) < 0 }

// TopKFunc returns the k best elements of s under less in sorted
// order — element-for-element identical to sorting all of s by less
// and truncating to k — without the full O(n log n) sort: a bounded
// max-heap holds the k best seen (its root the worst of them), and
// only those k are sorted at the end. less must be a total order over
// the elements (RankLess is, via the (PID, VPN) tie-break); otherwise
// the survivor set would depend on input order. s is permuted in
// place and the result aliases its prefix. k >= len(s) degrades to
// the full sort.
func TopKFunc[T any](s []T, k int, less func(a, b T) bool) []T {
	if k >= len(s) {
		sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
		return s
	}
	if k <= 0 {
		return s[:0]
	}
	h := s[:k]
	for i := k/2 - 1; i >= 0; i-- {
		siftDown(h, i, less)
	}
	for i := k; i < len(s); i++ {
		if less(s[i], h[0]) {
			h[0] = s[i]
			siftDown(h, 0, less)
		}
	}
	sort.Slice(h, func(i, j int) bool { return less(h[i], h[j]) })
	return h
}

// siftDown restores the max-heap property (every parent not-less than
// its children under less) below index i.
func siftDown[T any](h []T, i int, less func(a, b T) bool) {
	for {
		big := i
		if l := 2*i + 1; l < len(h) && less(h[big], h[l]) {
			big = l
		}
		if r := 2*i + 2; r < len(h) && less(h[big], h[r]) {
			big = r
		}
		if big == i {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// TopK returns the k hottest pages of a harvest under a method —
// exactly RankedPages(stats, m) truncated to k, proven by the
// differential tests — while allocating and sorting only k entries.
// Pages with zero rank under the method are excluded, as in
// RankedPages. Policies call this with their capacity; the full-sort
// path only runs when k covers the whole harvest.
func TopK(stats EpochStats, m Method, k int) []PageStat {
	if k <= 0 {
		return nil
	}
	less := func(a, b PageStat) bool { return statLess(&a, &b, m) }
	h := make([]PageStat, 0, min(k, len(stats.Pages)))
	heaped := false
	for i := range stats.Pages {
		ps := &stats.Pages[i]
		if ps.Rank(m) == 0 {
			continue
		}
		if len(h) < k {
			h = append(h, *ps)
			continue
		}
		if !heaped {
			for j := len(h)/2 - 1; j >= 0; j-- {
				siftDown(h, j, less)
			}
			heaped = true
		}
		if statLess(ps, &h[0], m) {
			h[0] = *ps
			siftDown(h, 0, less)
		}
	}
	sort.Slice(h, func(i, j int) bool { return statLess(&h[i], &h[j], m) })
	return h
}

// Ranks is a harvest's hotness table under one method: a dense rank
// column indexed by interned page id. It replaces the per-epoch
// map[PageKey]uint64 the mover used to rebuild; the zero value is a
// valid empty table (every lookup reports rank 0, i.e. coldest).
type Ranks struct {
	tab   *pageidx.Table[PageKey]
	ranks []uint64
}

// Get returns the page's rank, 0 when the profiler never saw it —
// the map-compatible lookup policy.Mover demotes coldest-first with.
func (r Ranks) Get(k PageKey) uint64 {
	if id, ok := r.tab.Lookup(k); ok {
		return r.ranks[id]
	}
	return 0
}

// Len returns the number of pages with a nonzero rank.
func (r Ranks) Len() int { return len(r.ranks) }

// RanksFromMap builds a Ranks table from explicit per-page ranks — a
// convenience for tests and callers that assemble hotness by hand.
func RanksFromMap(m map[PageKey]uint64) Ranks {
	tab := pageidx.New(len(m), PageKeyHash)
	ranks := make([]uint64, 0, len(m))
	//tmplint:ordered id assignment order never affects Get lookups
	for k, v := range m {
		tab.Intern(k)
		ranks = append(ranks, v)
	}
	return Ranks{tab: tab, ranks: ranks}
}

// RanksOf builds the hotness table for a harvest under a method; the
// page mover uses it to demote coldest-first.
func RanksOf(stats EpochStats, m Method) Ranks {
	tab := pageidx.New(len(stats.Pages), PageKeyHash)
	ranks := make([]uint64, 0, len(stats.Pages))
	for i := range stats.Pages {
		if r := stats.Pages[i].Rank(m); r > 0 {
			id := tab.Intern(stats.Pages[i].Key)
			if int(id) == len(ranks) {
				ranks = append(ranks, r)
			} else {
				ranks[id] = r // duplicate key in a crafted harvest: last wins
			}
		}
	}
	return Ranks{tab: tab, ranks: ranks}
}
