package core

import (
	"testing"

	"tieredmem/internal/cache"
	"tieredmem/internal/cpu"
	"tieredmem/internal/fault"
	"tieredmem/internal/mem"
	"tieredmem/internal/telemetry"
	"tieredmem/internal/tlb"
	"tieredmem/internal/trace"
)

func testMachine(t *testing.T, frames int) *cpu.Machine {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.Cores = 2
	cfg.PrefetchDegree = 0
	cfg.L1D = cache.Config{SizeBytes: 4 << 10, Ways: 2}
	cfg.L2 = cache.Config{SizeBytes: 16 << 10, Ways: 4}
	cfg.LLC = cache.Config{SizeBytes: 64 << 10, Ways: 4}
	cfg.L1TLB = tlb.Config{Entries: 16, Ways: 4}
	cfg.L2TLB = tlb.Config{Entries: 64, Ways: 4}
	m, err := cpu.NewMachine(cfg, mem.DefaultTiers(frames, frames))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// smallConfig keeps intervals tiny so ticks fire within a test.
func smallConfig() Config {
	cfg := DefaultConfig(64)
	cfg.Abit.Interval = 10_000
	cfg.HWPC.Window = 1_000
	cfg.FilterInterval = 10_000
	return cfg
}

func TestMethodString(t *testing.T) {
	if MethodAbit.String() != "abit" || MethodTrace.String() != "ibs" || MethodCombined.String() != "tmp" {
		t.Errorf("method names wrong")
	}
	if Method(9).String() != "method(9)" {
		t.Errorf("unknown method name wrong")
	}
}

func TestRankPerMethod(t *testing.T) {
	ps := PageStat{Abit: 2, Trace: 3}
	if ps.Rank(MethodAbit) != 2 || ps.Rank(MethodTrace) != 3 || ps.Rank(MethodCombined) != 5 {
		t.Errorf("ranks = %d/%d/%d", ps.Rank(MethodAbit), ps.Rank(MethodTrace), ps.Rank(MethodCombined))
	}
}

func TestProcessFilter(t *testing.T) {
	m := testMachine(t, 64)
	usage := map[int][2]float64{
		1: {0.50, 0.01}, // CPU-heavy: in
		2: {0.01, 0.50}, // memory-heavy: in
		3: {0.01, 0.01}, // idle: out
		4: {0.05, 0.00}, // exactly at the CPU bound: in
	}
	p, err := New(smallConfig(), m, func(pid int) (float64, float64) {
		u := usage[pid]
		return u[0], u[1]
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid := 1; pid <= 4; pid++ {
		p.Register(pid)
	}
	got := map[int]bool{}
	for _, pid := range p.Profiled() {
		got[pid] = true
	}
	if !got[1] || !got[2] || got[3] || !got[4] {
		t.Errorf("profiled set = %v, want {1,2,4}", p.Profiled())
	}
}

func TestRegisterIdempotent(t *testing.T) {
	m := testMachine(t, 64)
	p, _ := New(smallConfig(), m, nil)
	p.Register(1)
	p.Register(1)
	if len(p.Profiled()) != 1 {
		t.Errorf("duplicate registration: %v", p.Profiled())
	}
}

func TestFilterReevaluatedOnInterval(t *testing.T) {
	m := testMachine(t, 64)
	pass := false
	p, _ := New(smallConfig(), m, func(pid int) (float64, float64) {
		if pass {
			return 1, 1
		}
		return 0, 0
	})
	p.Register(1)
	if len(p.Profiled()) != 0 {
		t.Fatalf("idle process profiled")
	}
	pass = true
	p.Tick(10_000) // filter interval elapsed
	if len(p.Profiled()) != 1 {
		t.Errorf("filter not re-evaluated at the interval")
	}
}

func TestHarvestAggregatesAndResets(t *testing.T) {
	m := testMachine(t, 64)
	p, _ := New(smallConfig(), m, nil)
	p.Register(1)
	// Touch pages, then force a scan so A-bit evidence exists.
	for i := uint64(0); i < 8; i++ {
		if _, err := m.Execute(trace.Ref{PID: 1, VAddr: i * 4096, Kind: trace.Load}); err != nil {
			t.Fatal(err)
		}
	}
	p.Abit.Scan(0, []int{1})
	ep := p.HarvestEpoch()
	if len(ep.Pages) != 8 {
		t.Fatalf("harvested %d pages, want 8", len(ep.Pages))
	}
	for _, ps := range ep.Pages {
		if ps.Abit != 1 {
			t.Errorf("page %v Abit = %d, want 1", ps.Key, ps.Abit)
		}
		if ps.True != 1 {
			t.Errorf("page %v True = %d, want 1 (one cold miss)", ps.Key, ps.True)
		}
	}
	// Second harvest with no activity: empty.
	ep2 := p.HarvestEpoch()
	if len(ep2.Pages) != 0 {
		t.Errorf("second harvest has %d pages, want 0 (counters reset)", len(ep2.Pages))
	}
	if ep2.Epoch != 1 {
		t.Errorf("epoch index = %d, want 1", ep2.Epoch)
	}
}

func TestTickChargesDaemonCore(t *testing.T) {
	m := testMachine(t, 64)
	cfg := smallConfig()
	cfg.Gating = false
	p, _ := New(cfg, m, nil)
	p.Register(1)
	for i := uint64(0); i < 32; i++ {
		m.Execute(trace.Ref{PID: 1, VAddr: i * 4096, Kind: trace.Load})
	}
	before := m.Core(cfg.DaemonCore).Now()
	p.Tick(cfg.Abit.Interval) // scan due
	if m.Core(cfg.DaemonCore).Now() <= before {
		t.Errorf("A-bit scan cost not charged to the daemon core")
	}
}

func TestRankedPagesOrderingAndTieBreaks(t *testing.T) {
	stats := EpochStats{Pages: []PageStat{
		{Key: PageKey{1, 10}, Tier: mem.SlowTier, Abit: 1, Trace: 0},
		{Key: PageKey{1, 11}, Tier: mem.FastTier, Abit: 1, Trace: 0},
		{Key: PageKey{1, 12}, Tier: mem.SlowTier, Abit: 1, Trace: 5},
		{Key: PageKey{1, 13}, Tier: mem.SlowTier, Abit: 0, Trace: 0}, // rank 0: excluded
		{Key: PageKey{2, 9}, Tier: mem.SlowTier, Abit: 1, Trace: 0},
	}}
	ranked := RankedPages(stats, MethodCombined)
	if len(ranked) != 4 {
		t.Fatalf("ranked %d pages, want 4 (zero-rank excluded)", len(ranked))
	}
	if ranked[0].Key != (PageKey{1, 12}) {
		t.Errorf("highest rank not first: %v", ranked[0].Key)
	}
	// Tie group (rank 1): fast-tier resident first (hysteresis), then
	// by (PID, VPN).
	if ranked[1].Key != (PageKey{1, 11}) {
		t.Errorf("fast-tier resident not preferred on tie: %v", ranked[1].Key)
	}
	if ranked[2].Key != (PageKey{1, 10}) || ranked[3].Key != (PageKey{2, 9}) {
		t.Errorf("deterministic tie-break broken: %v, %v", ranked[2].Key, ranked[3].Key)
	}
}

func TestRanksOf(t *testing.T) {
	stats := EpochStats{Pages: []PageStat{
		{Key: PageKey{1, 1}, Abit: 2, Trace: 1},
		{Key: PageKey{1, 2}, Abit: 0, Trace: 0},
	}}
	ranks := RanksOf(stats, MethodCombined)
	if ranks.Len() != 1 || ranks.Get(PageKey{1, 1}) != 3 {
		t.Errorf("RanksOf: Len=%d Get={1,1}=%d", ranks.Len(), ranks.Get(PageKey{1, 1}))
	}
	if ranks.Get(PageKey{1, 2}) != 0 {
		t.Errorf("zero-rank page should report rank 0, got %d", ranks.Get(PageKey{1, 2}))
	}
	if (Ranks{}).Get(PageKey{1, 1}) != 0 || (Ranks{}).Len() != 0 {
		t.Errorf("zero-value Ranks must behave as an empty table")
	}
}

func TestTraceAccumulationIntoDescriptors(t *testing.T) {
	m := testMachine(t, 64)
	cfg := smallConfig()
	cfg.IBS.Period = 1 // tag every op
	cfg.Gating = false
	p, _ := New(cfg, m, nil)
	p.Register(1)
	var observed int
	p.SetSampleObserver(func(s trace.Sample) { observed++ })
	// Cold misses are memory-sourced: samples are delivered.
	for i := uint64(0); i < 8; i++ {
		m.Execute(trace.Ref{PID: 1, VAddr: i * 4096, Kind: trace.Load})
	}
	ep := p.HarvestEpoch()
	var traceSum uint32
	for _, ps := range ep.Pages {
		traceSum += ps.Trace
	}
	if traceSum == 0 {
		t.Errorf("no trace evidence accumulated at period 1")
	}
	if observed == 0 {
		t.Errorf("sample observer never invoked")
	}
}

func TestOverheadNSAccessors(t *testing.T) {
	m := testMachine(t, 64)
	p, _ := New(smallConfig(), m, nil)
	ibsNS, abitNS, hwpcNS := p.OverheadNS()
	if ibsNS != 0 || abitNS != 0 || hwpcNS != 0 {
		t.Errorf("fresh profiler reports overhead %d/%d/%d", ibsNS, abitNS, hwpcNS)
	}
}

func TestQuarantineDegradesToSurvivor(t *testing.T) {
	m := testMachine(t, 64)
	cfg := smallConfig()
	cfg.IBS.Period = 1
	cfg.Gating = false
	cfg.QuarantineMinEvents = 10
	p, _ := New(cfg, m, nil)
	p.Register(1)
	// Every delivered sample drops: the IBS fault rate is 100%.
	spec, _ := fault.ParseSpec("ibs.drop=1")
	p.SetFaultPlane(fault.New(spec, 1))
	tr := telemetry.New()
	p.SetTracer(tr)
	for i := uint64(0); i < 32; i++ {
		m.Execute(trace.Ref{PID: 1, VAddr: i * 4096, Kind: trace.Load})
	}
	p.HarvestEpoch()
	if !p.IBS.Quarantined() {
		t.Fatalf("100%%-lossy IBS not quarantined (drops=%d)", p.IBS.Stats().FaultDrops)
	}
	if got := p.EffectiveMethod(MethodCombined); got != MethodAbit {
		t.Errorf("EffectiveMethod(tmp) = %v, want abit", got)
	}
	if got := p.EffectiveMethod(MethodTrace); got != MethodAbit {
		t.Errorf("EffectiveMethod(ibs) = %v, want abit", got)
	}
	if got := p.EffectiveMethod(MethodAbit); got != MethodAbit {
		t.Errorf("EffectiveMethod(abit) = %v, want abit unchanged", got)
	}
	if qs := p.QuarantinedMechanisms(); len(qs) != 1 || qs[0] != "ibs" {
		t.Errorf("QuarantinedMechanisms = %v, want [ibs]", qs)
	}
	// The decision left its evidence in the event stream.
	found := false
	for _, e := range tr.Events() {
		if e.Kind == telemetry.KindQuarantine && e.Name == "ibs" {
			found = true
			if e.A == 0 || e.B == 0 {
				t.Errorf("quarantine event has empty evidence: %+v", e)
			}
		}
	}
	if !found {
		t.Errorf("no KindQuarantine event emitted")
	}
}

func TestQuarantineNeedsMinimumEvidence(t *testing.T) {
	m := testMachine(t, 64)
	cfg := smallConfig()
	cfg.IBS.Period = 1
	cfg.Gating = false
	cfg.QuarantineMinEvents = 1000 // far more than this test generates
	p, _ := New(cfg, m, nil)
	p.Register(1)
	spec, _ := fault.ParseSpec("ibs.drop=1")
	p.SetFaultPlane(fault.New(spec, 1))
	for i := uint64(0); i < 8; i++ {
		m.Execute(trace.Ref{PID: 1, VAddr: i * 4096, Kind: trace.Load})
	}
	p.HarvestEpoch()
	if p.IBS.Quarantined() {
		t.Errorf("quarantined on %d attempts, below the %d minimum",
			8, cfg.QuarantineMinEvents)
	}
}

func TestQuarantineDisabledAtZeroThreshold(t *testing.T) {
	m := testMachine(t, 64)
	cfg := smallConfig()
	cfg.IBS.Period = 1
	cfg.Gating = false
	cfg.QuarantineThreshold = 0
	cfg.QuarantineMinEvents = 1
	p, _ := New(cfg, m, nil)
	p.Register(1)
	spec, _ := fault.ParseSpec("ibs.drop=1")
	p.SetFaultPlane(fault.New(spec, 1))
	for i := uint64(0); i < 32; i++ {
		m.Execute(trace.Ref{PID: 1, VAddr: i * 4096, Kind: trace.Load})
	}
	p.HarvestEpoch()
	if p.IBS.Quarantined() {
		t.Errorf("quarantine fired with threshold 0 (disabled)")
	}
}

func TestEffectiveMethodBothQuarantined(t *testing.T) {
	m := testMachine(t, 64)
	p, _ := New(smallConfig(), m, nil)
	p.IBS.Quarantine()
	p.Abit.Quarantine()
	for _, meth := range Methods {
		if got := p.EffectiveMethod(meth); got != meth {
			t.Errorf("EffectiveMethod(%v) = %v with nothing to degrade to", meth, got)
		}
	}
}
