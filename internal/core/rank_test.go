package core

import (
	"math/rand"
	"sort"
	"testing"

	"tieredmem/internal/mem"
)

// tieHeavyStats builds a harvest with unique keys, heavy rank ties
// (small moduli), mixed tiers, and shuffled input order — the shape
// that stresses both the tie-break and the bounded heap.
func tieHeavyStats(n int, seed int64) EpochStats {
	rng := rand.New(rand.NewSource(seed))
	stats := EpochStats{Pages: make([]PageStat, 0, n)}
	for i := 0; i < n; i++ {
		tier := mem.SlowTier
		if i%3 == 0 {
			tier = mem.FastTier
		}
		stats.Pages = append(stats.Pages, PageStat{
			Key:   PageKey{PID: 1 + i%4, VPN: mem.VPN(i / 4)},
			Tier:  tier,
			Abit:  uint32(i % 7), // many zero-rank pages and tie groups
			Trace: uint32(i % 11),
			Write: uint32(i % 5),
		})
	}
	rng.Shuffle(len(stats.Pages), func(i, j int) {
		stats.Pages[i], stats.Pages[j] = stats.Pages[j], stats.Pages[i]
	})
	return stats
}

// TestTopKMatchesFullSortTruncate is the differential proof the
// bounded selection leans on: for every method and a sweep of k
// (including 0, 1, exactly n, and past n), TopK must be
// element-for-element identical to the full RankedPages sort truncated
// to k — tie shapes included.
func TestTopKMatchesFullSortTruncate(t *testing.T) {
	for _, n := range []int{0, 1, 13, 100} {
		stats := tieHeavyStats(n, int64(n)+1)
		for _, m := range []Method{MethodAbit, MethodTrace, MethodCombined} {
			full := RankedPages(stats, m)
			for _, k := range []int{0, 1, 3, n / 2, n - 1, n, n + 5} {
				if k < 0 {
					continue
				}
				got := TopK(stats, m, k)
				want := full
				if k < len(want) {
					want = want[:k]
				}
				if len(got) != len(want) {
					t.Fatalf("n=%d m=%v k=%d: TopK len %d, full-sort len %d", n, m, k, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("n=%d m=%v k=%d: element %d differs: TopK %+v, full sort %+v",
							n, m, k, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestTopKFuncMatchesSortTruncate proves the generic bounded selector
// against sort-then-truncate on the coldest-first order the mover uses.
func TestTopKFuncMatchesSortTruncate(t *testing.T) {
	type cand struct {
		key  PageKey
		rank uint64
	}
	coldest := func(a, b cand) bool { return ColdestLess(a.rank, b.rank, a.key, b.key) }
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 17, 64} {
		base := make([]cand, n)
		for i := range base {
			base[i] = cand{key: PageKey{PID: 1, VPN: mem.VPN(i)}, rank: uint64(i % 5)}
		}
		rng.Shuffle(n, func(i, j int) { base[i], base[j] = base[j], base[i] })
		want := append([]cand(nil), base...)
		sort.Slice(want, func(i, j int) bool { return coldest(want[i], want[j]) })
		for _, k := range []int{-1, 0, 1, n / 2, n, n + 3} {
			in := append([]cand(nil), base...)
			got := TopKFunc(in, k, coldest)
			w := want
			if k < 0 {
				w = want[:0]
			} else if k < len(w) {
				w = want[:k]
			}
			if len(got) != len(w) {
				t.Fatalf("n=%d k=%d: TopKFunc len %d, want %d", n, k, len(got), len(w))
			}
			for i := range got {
				if got[i] != w[i] {
					t.Fatalf("n=%d k=%d: element %d = %+v, want %+v", n, k, i, got[i], w[i])
				}
			}
		}
	}
}

func TestRankLessCanonicalOrder(t *testing.T) {
	a, b := PageKey{1, 1}, PageKey{1, 2}
	if !RankLess(2, 1, false, false, a, b) || RankLess(1, 2, false, false, a, b) {
		t.Errorf("rank-descending broken")
	}
	if !RankLess(1, 1, true, false, b, a) || RankLess(1, 1, false, true, a, b) {
		t.Errorf("fast-tier tie preference broken")
	}
	if !RankLess(1, 1, false, false, a, b) || RankLess(1, 1, false, false, b, a) {
		t.Errorf("(PID, VPN) tie-break broken")
	}
	// ColdestLess is RankLess with ranks swapped: ascending rank.
	if !ColdestLess(1, 2, a, b) || ColdestLess(2, 1, a, b) {
		t.Errorf("ColdestLess not coldest-first")
	}
	if !ColdestLess(1, 1, a, b) || ColdestLess(1, 1, b, a) {
		t.Errorf("ColdestLess tie-break broken")
	}
}

func TestRanksFromMap(t *testing.T) {
	r := RanksFromMap(map[PageKey]uint64{
		{1, 1}: 10,
		{1, 2}: 0,
		{2, 1}: 3,
	})
	if r.Get(PageKey{1, 1}) != 10 || r.Get(PageKey{2, 1}) != 3 {
		t.Errorf("stored ranks wrong: %d, %d", r.Get(PageKey{1, 1}), r.Get(PageKey{2, 1}))
	}
	if r.Get(PageKey{1, 2}) != 0 || r.Get(PageKey{9, 9}) != 0 {
		t.Errorf("zero/missing pages must rank 0")
	}
}
