// Package emul reproduces the paper's §VI-C evaluation vehicle: a
// BadgerTrap-based emulation framework for tiered memory on DRAM-only
// hardware. The framework keeps a list of "slow" memory locations,
// periodically sets protection (poison) bits on their pages, and
// injects latency in the protection-fault handler before granting
// access: 10 us per slow-memory fault, an additional 13 us when the
// faulting page is hot (queueing at the slow tier), and 50 us per page
// migration. The paper used it because real NVM required exotic
// boards and BIOS support; we keep it because it exercises the
// BadgerTrap poison machinery end to end and lets us report speedups
// under the paper's exact cost model alongside our simulator's native
// tier latencies.
package emul

import (
	"fmt"

	"tieredmem/internal/cpu"
	"tieredmem/internal/mem"
	"tieredmem/internal/trace"
)

// Costs is the paper's calibrated timing model.
type Costs struct {
	SlowAccessNS int64 // latency added per protection fault on a slow page
	HotExtraNS   int64 // additional latency when the slow page is hot
	MigrationNS  int64 // per-page migration cost
	// HotThreshold is the previous-epoch ground-truth access count at
	// which a page counts as hot for the HotExtraNS penalty.
	HotThreshold uint32
	// WindowNS is the re-protection period (the framework "sets the
	// protection bits periodically").
	WindowNS int64
}

// PaperCosts returns the constants from §VI-C: 50 us migration, 10 us
// per slow access fault, 13 us extra for hot pages, scaled-second
// windows.
func PaperCosts(windowNS int64) Costs {
	return Costs{
		SlowAccessNS: 10_000,
		HotExtraNS:   13_000,
		MigrationNS:  50_000,
		HotThreshold: 8,
		WindowNS:     windowNS,
	}
}

// Stats counts emulator activity.
type Stats struct {
	Windows     uint64
	Poisoned    uint64 // page-poisonings applied across all windows
	Faults      uint64 // protection faults taken on slow pages
	HotFaults   uint64
	InjectedNS  int64 // total latency injected via faults
	MigratedNS  int64 // total migration cost charged
	MigratedPgs uint64
}

// Emulator drives latency injection on one machine.
type Emulator struct {
	cfg     Costs
	machine *cpu.Machine
	stats   Stats
	next    int64
}

// New attaches an emulator to a machine and installs its
// protection-fault handler.
func New(cfg Costs, m *cpu.Machine) (*Emulator, error) {
	if cfg.WindowNS <= 0 {
		return nil, fmt.Errorf("emul: window %d must be positive", cfg.WindowNS)
	}
	e := &Emulator{cfg: cfg, machine: m, next: cfg.WindowNS}
	m.SetPoisonHandler(e.handleFault)
	return e, nil
}

// handleFault is the trap handler: add slow-memory latency (plus the
// hot-page penalty), then unpoison so subsequent accesses inside the
// window run at full speed — BadgerTrap's unpoison-on-fault.
func (e *Emulator) handleFault(o *trace.Outcome, pd *mem.PageDescriptor) (int64, bool) {
	e.stats.Faults++
	extra := e.machine.SoftCost(e.cfg.SlowAccessNS)
	// A page is hot when the current epoch already shows threshold
	// accesses or its lifetime total implies a sustained rate.
	if pd.TrueEpoch >= e.cfg.HotThreshold || pd.TrueTotal >= 4*uint64(e.cfg.HotThreshold) {
		e.stats.HotFaults++
		extra += e.machine.SoftCost(e.cfg.HotExtraNS)
	}
	e.stats.InjectedNS += extra
	return extra, true
}

// TickIfDue re-applies protection to every slow-tier page at window
// boundaries. It returns whether a window ran.
func (e *Emulator) TickIfDue(now int64) bool {
	if now < e.next {
		return false
	}
	for e.next <= now {
		e.next += e.cfg.WindowNS
	}
	e.Repoison()
	return true
}

// Repoison sets the protection bit on every page currently resident in
// the slow tier ("we maintain a list of slower memory locations and
// set protection bits on memory pages that belong to the list").
func (e *Emulator) Repoison() {
	e.stats.Windows++
	phys := e.machine.Phys
	tables := e.machine.Tables()
	phys.ForEachAllocated(func(pd *mem.PageDescriptor) {
		if pd.Tier == mem.FastTier {
			return
		}
		table, ok := tables[pd.PID]
		if !ok {
			return
		}
		if table.SetPoison(pd.VPage, true) {
			e.stats.Poisoned++
		}
	})
	// The protection change must be visible: one shootdown per window.
	e.machine.FlushAllTLBs()
}

// ChargeMigration records the emulated cost of migrating n pages and
// returns the ns to charge the mover's core.
func (e *Emulator) ChargeMigration(n int) int64 {
	cost := e.machine.SoftCost(int64(n) * e.cfg.MigrationNS)
	e.stats.MigratedNS += cost
	e.stats.MigratedPgs += uint64(n)
	return cost
}

// Stats returns a copy of the counters.
func (e *Emulator) Stats() Stats { return e.stats }
