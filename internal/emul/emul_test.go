package emul

import (
	"testing"

	"tieredmem/internal/cache"
	"tieredmem/internal/cpu"
	"tieredmem/internal/mem"
	"tieredmem/internal/tlb"
	"tieredmem/internal/trace"
)

func testMachine(t *testing.T, fast, slow int) *cpu.Machine {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.Cores = 2
	cfg.PrefetchDegree = 0
	cfg.CtxSwitchNS = 0
	cfg.L1D = cache.Config{SizeBytes: 4 << 10, Ways: 2}
	cfg.L2 = cache.Config{SizeBytes: 16 << 10, Ways: 4}
	cfg.LLC = cache.Config{SizeBytes: 64 << 10, Ways: 4}
	cfg.L1TLB = tlb.Config{Entries: 16, Ways: 4}
	cfg.L2TLB = tlb.Config{Entries: 64, Ways: 4}
	m, err := cpu.NewMachine(cfg, mem.DefaultTiers(fast, slow))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func touch(t *testing.T, m *cpu.Machine, vaddr uint64) *trace.Outcome {
	t.Helper()
	o, err := m.Execute(trace.Ref{PID: 1, VAddr: vaddr, Kind: trace.Load})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestPaperCosts(t *testing.T) {
	c := PaperCosts(1000)
	if c.SlowAccessNS != 10_000 || c.HotExtraNS != 13_000 || c.MigrationNS != 50_000 {
		t.Errorf("paper constants wrong: %+v", c)
	}
	if c.WindowNS != 1000 {
		t.Errorf("window not propagated")
	}
}

func TestRepoisonTargetsSlowPagesOnly(t *testing.T) {
	m := testMachine(t, 2, 16)
	em, err := New(PaperCosts(1000), m)
	if err != nil {
		t.Fatal(err)
	}
	touch(t, m, 0x0000) // fast
	touch(t, m, 0x1000) // fast
	touch(t, m, 0x2000) // spills slow
	em.Repoison()
	fastPTE, _ := m.Table(1).Resolve(0)
	slowPTE, _ := m.Table(1).Resolve(2)
	if fastPTE.Poisoned() {
		t.Errorf("fast-tier page poisoned")
	}
	if !slowPTE.Poisoned() {
		t.Errorf("slow-tier page not poisoned")
	}
	if em.Stats().Poisoned != 1 {
		t.Errorf("Poisoned = %d, want 1", em.Stats().Poisoned)
	}
}

func TestFaultInjectsLatencyAndUnpoisons(t *testing.T) {
	m := testMachine(t, 1, 16)
	em, _ := New(PaperCosts(1_000_000), m)
	touch(t, m, 0x0000) // fast
	touch(t, m, 0x1000) // slow
	em.Repoison()
	o := touch(t, m, 0x1000)
	if em.Stats().Faults != 1 {
		t.Fatalf("Faults = %d, want 1", em.Stats().Faults)
	}
	if o.Latency < 10_000 {
		t.Errorf("latency %d does not include the 10us injection", o.Latency)
	}
	// BadgerTrap semantics: unpoisoned after the fault, so the next
	// access in the window is fast.
	o2 := touch(t, m, 0x1000)
	if em.Stats().Faults != 1 {
		t.Errorf("second access faulted; page not unpoisoned")
	}
	if o2.Latency >= 10_000 {
		t.Errorf("second access still slow: %d", o2.Latency)
	}
}

func TestHotPagePaysExtra(t *testing.T) {
	m := testMachine(t, 1, 16)
	costs := PaperCosts(1_000_000)
	costs.HotThreshold = 2
	em, _ := New(costs, m)
	touch(t, m, 0x0000)
	// Make page 1 hot in ground truth: several memory-level accesses.
	// Cold misses count; cache hits do not, so touch distinct lines.
	for i := uint64(0); i < 4; i++ {
		touch(t, m, 0x1000+i*64)
		// Evict from caches by touching other lines? Simpler: the
		// first four accesses to distinct lines all miss -> TrueEpoch
		// rises to 4.
	}
	em.Repoison()
	touch(t, m, 0x1000)
	s := em.Stats()
	if s.HotFaults != 1 {
		t.Fatalf("HotFaults = %d, want 1 (TrueEpoch above threshold)", s.HotFaults)
	}
	if s.InjectedNS < 23_000 {
		t.Errorf("hot fault injected %d, want >= 23us", s.InjectedNS)
	}
}

func TestTickIfDueWindows(t *testing.T) {
	m := testMachine(t, 1, 16)
	em, _ := New(PaperCosts(1000), m)
	touch(t, m, 0x0000)
	touch(t, m, 0x1000) // slow
	if em.TickIfDue(999) {
		t.Errorf("window ran early")
	}
	if !em.TickIfDue(1000) {
		t.Errorf("window did not run at the edge")
	}
	// The fault unpoisons; the next window must re-poison.
	touch(t, m, 0x1000)
	faults := em.Stats().Faults
	if !em.TickIfDue(2000) {
		t.Fatalf("second window did not run")
	}
	touch(t, m, 0x1000)
	if em.Stats().Faults != faults+1 {
		t.Errorf("re-poisoned page did not fault in the new window")
	}
}

func TestChargeMigration(t *testing.T) {
	m := testMachine(t, 4, 4)
	em, _ := New(PaperCosts(1000), m)
	cost := em.ChargeMigration(3)
	if cost != 150_000 {
		t.Errorf("migration cost = %d, want 3 x 50us", cost)
	}
	if em.Stats().MigratedPgs != 3 {
		t.Errorf("MigratedPgs = %d", em.Stats().MigratedPgs)
	}
}

func TestBadWindow(t *testing.T) {
	m := testMachine(t, 4, 4)
	if _, err := New(PaperCosts(0), m); err == nil {
		t.Errorf("zero window accepted")
	}
}
