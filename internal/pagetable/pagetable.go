// Package pagetable implements x86-64-style 4-level radix page tables
// with Present/Write/Accessed/Dirty bits, 2 MiB huge-page (PS) leaf
// entries at the PMD level, and the reserved "poison" bit (bit 51)
// that BadgerTrap-style tooling uses to force protection faults on
// chosen pages. A software page-table walker with hardware semantics
// lives in the cpu package; the A-bit scan driver (abit package) uses
// this package's WalkRange visitor, the analog of Linux's mm_walk.
//
// Huge pages matter to the paper's evaluation: THP-backed HPC heaps
// expose one PMD-level A bit per 2 MiB, so A-bit profiling sees them
// at 512x coarser granularity than IBS/PEBS's exact 4 KiB physical
// addresses — the mechanism behind Table IV's tiny A-bit page counts
// for GUPS/XSBench and Fig. 6's TMP advantage.
package pagetable

import (
	"fmt"

	"tieredmem/internal/mem"
)

// PTE is a page-table entry in x86-64 layout.
type PTE uint64

// PTE bit assignments (matching x86-64).
const (
	BitPresent  PTE = 1 << 0
	BitWrite    PTE = 1 << 1
	BitUser     PTE = 1 << 2
	BitAccessed PTE = 1 << 5
	BitDirty    PTE = 1 << 6
	// BitHuge is the PS bit: at the PMD level it marks a 2 MiB leaf.
	BitHuge PTE = 1 << 7
	// BitPoison is reserved bit 51: setting a reserved bit in a
	// present PTE makes hardware raise a protection fault on access,
	// the BadgerTrap trick (§II-B).
	BitPoison PTE = 1 << 51
	// BitProtNone marks an AutoNUMA hint PTE: Linux's NUMA balancing
	// periodically makes mappings inaccessible (PROT_NONE) so the
	// next access faults and reveals which task touched the page.
	// Modeled as a reserved bit so present-ness bookkeeping stays
	// simple; the walker treats it as access-triggering like poison.
	BitProtNone PTE = 1 << 52

	pfnShift = 12
	pfnMask  = (PTE(1)<<39 - 1) << pfnShift // bits 12..50
)

// Present reports whether the entry maps a frame.
func (p PTE) Present() bool { return p&BitPresent != 0 }

// Writable reports whether stores are permitted.
func (p PTE) Writable() bool { return p&BitWrite != 0 }

// Accessed reports the A bit.
func (p PTE) Accessed() bool { return p&BitAccessed != 0 }

// Dirty reports the D bit.
func (p PTE) Dirty() bool { return p&BitDirty != 0 }

// Huge reports the PS bit.
func (p PTE) Huge() bool { return p&BitHuge != 0 }

// Poisoned reports the BadgerTrap reserved bit.
func (p PTE) Poisoned() bool { return p&BitPoison != 0 }

// ProtNone reports the AutoNUMA hint bit.
func (p PTE) ProtNone() bool { return p&BitProtNone != 0 }

// PFN extracts the mapped frame number (the base frame for huge
// leaves).
func (p PTE) PFN() mem.PFN { return mem.PFN((p & pfnMask) >> pfnShift) }

// NewPTE builds a present entry for a frame.
func NewPTE(pfn mem.PFN, writable bool) PTE {
	p := BitPresent | BitUser | (PTE(pfn)<<pfnShift)&pfnMask
	if writable {
		p |= BitWrite
	}
	return p
}

// Four radix levels of 9 bits each cover VPN bits [0,36).
const (
	levels     = 4
	radixBits  = 9
	radixSize  = 1 << radixBits
	radixMask  = radixSize - 1
	maxVPNBits = levels * radixBits
	// pmdLevel is the level whose entries may be huge leaves.
	pmdLevel = levels - 2
)

// node is one 512-entry table page. Leaf nodes use ptes; interior
// nodes use children — except PMD nodes, where a slot holds either a
// child PT pointer or a huge-leaf PTE.
type node struct {
	ptes     [radixSize]PTE
	children [radixSize]*node
	live     int // populated slots, for bookkeeping
}

// Table is one process's page table.
type Table struct {
	pid        int
	root       *node
	mapped     int // present leaf PTEs (a huge leaf counts once)
	hugeLeaves int
	version    uint64 // bumped on every unmap/remap/split, for staleness checks
}

// New returns an empty table for a process.
func New(pid int) *Table {
	return &Table{pid: pid, root: &node{}}
}

// PID returns the owning process ID.
func (t *Table) PID() int { return t.pid }

// Mapped returns the number of present leaf entries (huge leaves count
// once — this is the quantity an A-bit walk visits and pays for).
func (t *Table) Mapped() int { return t.mapped }

// HugeLeaves returns the number of 2 MiB leaf entries.
func (t *Table) HugeLeaves() int { return t.hugeLeaves }

// MappedPages returns the number of 4 KiB pages covered by present
// leaves.
func (t *Table) MappedPages() int {
	return t.mapped - t.hugeLeaves + t.hugeLeaves*mem.HugePages
}

// Version returns a counter bumped on every unmap, remap or split.
func (t *Table) Version() uint64 { return t.version }

func indexAt(vpn mem.VPN, level int) int {
	// level 0 is the root (top 9 bits), level 3 the leaf.
	shift := uint((levels - 1 - level) * radixBits)
	return int(uint64(vpn)>>shift) & radixMask
}

func checkVPN(vpn mem.VPN) {
	if uint64(vpn)>>maxVPNBits != 0 {
		panic(fmt.Sprintf("pagetable: VPN %#x exceeds %d-bit space", uint64(vpn), maxVPNBits))
	}
}

// Map installs a 4 KiB mapping vpn -> pfn, replacing any existing 4 KiB
// mapping. Mapping inside an existing huge leaf panics — callers must
// split first.
func (t *Table) Map(vpn mem.VPN, pfn mem.PFN, writable bool) {
	checkVPN(vpn)
	n := t.root
	for lvl := 0; lvl < levels-1; lvl++ {
		idx := indexAt(vpn, lvl)
		if lvl == pmdLevel && n.ptes[idx].Present() {
			panic(fmt.Sprintf("pagetable: 4 KiB map inside huge leaf at vpn %#x", uint64(vpn)))
		}
		child := n.children[idx]
		if child == nil {
			child = &node{}
			n.children[idx] = child
			n.live++
		}
		n = child
	}
	idx := indexAt(vpn, levels-1)
	if !n.ptes[idx].Present() {
		t.mapped++
		n.live++
	}
	n.ptes[idx] = NewPTE(pfn, writable)
}

// MapHuge installs a 2 MiB leaf at the PMD level. vpnBase and pfnBase
// must be 512-page aligned, and the slot must be empty.
func (t *Table) MapHuge(vpnBase mem.VPN, pfnBase mem.PFN, writable bool) {
	checkVPN(vpnBase)
	if uint64(vpnBase)%mem.HugePages != 0 {
		panic(fmt.Sprintf("pagetable: huge vpn base %#x not aligned", uint64(vpnBase)))
	}
	if uint64(pfnBase)%mem.HugePages != 0 {
		panic(fmt.Sprintf("pagetable: huge pfn base %#x not aligned", uint64(pfnBase)))
	}
	n := t.root
	for lvl := 0; lvl < pmdLevel; lvl++ {
		idx := indexAt(vpnBase, lvl)
		child := n.children[idx]
		if child == nil {
			child = &node{}
			n.children[idx] = child
			n.live++
		}
		n = child
	}
	idx := indexAt(vpnBase, pmdLevel)
	if n.children[idx] != nil || n.ptes[idx].Present() {
		panic(fmt.Sprintf("pagetable: huge map collides at vpn %#x", uint64(vpnBase)))
	}
	n.ptes[idx] = NewPTE(pfnBase, writable) | BitHuge
	n.live++
	t.mapped++
	t.hugeLeaves++
}

// CanMapHuge reports whether the PMD slot covering vpnBase is empty —
// no huge leaf and no base-page table below it (THP can only collapse
// a chunk none of whose pages are already mapped, short of a
// khugepaged-style collapse which we do not model).
func (t *Table) CanMapHuge(vpnBase mem.VPN) bool {
	checkVPN(vpnBase)
	n := t.root
	for lvl := 0; lvl < pmdLevel; lvl++ {
		n = n.children[indexAt(vpnBase, lvl)]
		if n == nil {
			return true
		}
	}
	idx := indexAt(vpnBase, pmdLevel)
	return n.children[idx] == nil && !n.ptes[idx].Present()
}

// pmdSlot returns the PMD node and index covering vpn, or nil when no
// path exists.
func (t *Table) pmdSlot(vpn mem.VPN) (*node, int) {
	n := t.root
	for lvl := 0; lvl < pmdLevel; lvl++ {
		n = n.children[indexAt(vpn, lvl)]
		if n == nil {
			return nil, 0
		}
	}
	return n, indexAt(vpn, pmdLevel)
}

// Resolve returns a pointer to the live leaf PTE covering vpn and
// whether it is a huge leaf; nil when unmapped. The cpu package's
// walker uses the pointer to set A/D bits exactly as hardware does;
// the abit driver test-and-clears through WalkRange instead.
func (t *Table) Resolve(vpn mem.VPN) (*PTE, bool) {
	checkVPN(vpn)
	pmd, idx := t.pmdSlot(vpn)
	if pmd == nil {
		return nil, false
	}
	if pmd.ptes[idx].Present() {
		return &pmd.ptes[idx], true
	}
	leaf := pmd.children[idx]
	if leaf == nil {
		return nil, false
	}
	li := indexAt(vpn, levels-1)
	if !leaf.ptes[li].Present() {
		return nil, false
	}
	return &leaf.ptes[li], false
}

// PTEPtr returns the live 4 KiB PTE for vpn, or nil when the page is
// unmapped or covered by a huge leaf.
func (t *Table) PTEPtr(vpn mem.VPN) *PTE {
	p, huge := t.Resolve(vpn)
	if p == nil || huge {
		return nil
	}
	return p
}

// Lookup returns the leaf PTE value covering vpn and whether it is
// huge.
func (t *Table) Lookup(vpn mem.VPN) (PTE, bool, bool) {
	p, huge := t.Resolve(vpn)
	if p == nil {
		return 0, false, false
	}
	return *p, huge, true
}

// Frame translates vpn to its physical frame, handling huge leaves.
func (t *Table) Frame(vpn mem.VPN) (mem.PFN, bool) {
	p, huge := t.Resolve(vpn)
	if p == nil {
		return 0, false
	}
	if huge {
		return p.PFN() + mem.PFN(uint64(vpn)%mem.HugePages), true
	}
	return p.PFN(), true
}

// Unmap removes the 4 KiB mapping for vpn, reporting whether one
// existed. Huge leaves must be split or removed via UnmapHuge. A leaf
// page table left empty is pruned from its PMD slot so the slot can
// later take a huge mapping (khugepaged collapse relies on this).
func (t *Table) Unmap(vpn mem.VPN) bool {
	p, huge := t.Resolve(vpn)
	if p == nil || huge {
		return false
	}
	*p = 0
	pmd, idx := t.pmdSlot(vpn)
	leaf := pmd.children[idx]
	leaf.live--
	if leaf.live == 0 {
		pmd.children[idx] = nil
		pmd.live--
	}
	t.mapped--
	t.version++
	return true
}

// UnmapHuge removes a 2 MiB leaf, reporting whether one existed at
// vpnBase.
func (t *Table) UnmapHuge(vpnBase mem.VPN) bool {
	pmd, idx := t.pmdSlot(vpnBase)
	if pmd == nil || !pmd.ptes[idx].Present() {
		return false
	}
	pmd.ptes[idx] = 0
	pmd.live--
	t.mapped--
	t.hugeLeaves--
	t.version++
	return true
}

// SplitHuge replaces the huge leaf covering vpn with 512 base PTEs
// mapping the same consecutive frames, propagating the A/D/poison bits
// to every child — Linux's THP split, which the page mover performs
// before migrating a 4 KiB page out of a huge mapping. It reports
// whether a huge leaf was present.
func (t *Table) SplitHuge(vpn mem.VPN) bool {
	pmd, idx := t.pmdSlot(vpn)
	if pmd == nil || !pmd.ptes[idx].Present() {
		return false
	}
	hpte := pmd.ptes[idx]
	leaf := &node{}
	inherit := hpte & (BitAccessed | BitDirty | BitPoison | BitWrite)
	base := hpte.PFN()
	for i := 0; i < radixSize; i++ {
		leaf.ptes[i] = NewPTE(base+mem.PFN(i), false) | inherit
	}
	leaf.live = radixSize
	pmd.ptes[idx] = 0
	pmd.children[idx] = leaf
	t.mapped += radixSize - 1
	t.hugeLeaves--
	t.version++
	return true
}

// Remap points an existing 4 KiB mapping at a new frame, preserving
// the Write permission and clearing A/D (a migrated page starts cold).
// The caller is responsible for the TLB shootdown. Remap reports
// whether a 4 KiB mapping existed (huge leaves must be split first).
func (t *Table) Remap(vpn mem.VPN, pfn mem.PFN) bool {
	p := t.PTEPtr(vpn)
	if p == nil {
		return false
	}
	*p = NewPTE(pfn, p.Writable())
	t.version++
	return true
}

// SetPoison sets or clears the BadgerTrap reserved bit on the leaf
// covering vpn (huge or base), reporting whether a mapping existed.
func (t *Table) SetPoison(vpn mem.VPN, poisoned bool) bool {
	p, _ := t.Resolve(vpn)
	if p == nil {
		return false
	}
	if poisoned {
		*p |= BitPoison
	} else {
		*p &^= BitPoison
	}
	return true
}

// SetProtNone sets or clears the AutoNUMA hint bit on the leaf
// covering vpn, reporting whether a mapping existed.
func (t *Table) SetProtNone(vpn mem.VPN, protNone bool) bool {
	p, _ := t.Resolve(vpn)
	if p == nil {
		return false
	}
	if protNone {
		*p |= BitProtNone
	} else {
		*p &^= BitProtNone
	}
	return true
}

// VisitFunc is invoked for each present leaf PTE during WalkRange.
// vpn is the first virtual page the leaf covers (the base VPN for a
// huge leaf); pte points at the live entry so the visitor can
// test-and-clear bits; huge distinguishes 2 MiB leaves. Returning
// false stops the walk early.
type VisitFunc func(vpn mem.VPN, pte *PTE, huge bool) bool

// WalkRange visits every present leaf PTE in ascending VPN order: the
// simulator's mm_walk. It returns the number of leaf PTEs visited,
// which the A-bit driver charges as walk overhead (the paper's
// Table I: A-bit overhead is proportional to the PTEs traversed; a
// huge leaf costs one visit, not 512).
func (t *Table) WalkRange(fn VisitFunc) int {
	visited := 0
	t.walkNode(t.root, 0, 0, fn, &visited)
	return visited
}

func (t *Table) walkNode(n *node, level int, prefix uint64, fn VisitFunc, visited *int) bool {
	if level == levels-1 {
		for i := 0; i < radixSize; i++ {
			if !n.ptes[i].Present() {
				continue
			}
			*visited++
			vpn := mem.VPN(prefix<<radixBits | uint64(i))
			if !fn(vpn, &n.ptes[i], false) {
				return false
			}
		}
		return true
	}
	for i := 0; i < radixSize; i++ {
		if level == pmdLevel && n.ptes[i].Present() {
			*visited++
			vpn := mem.VPN((prefix<<radixBits | uint64(i)) << radixBits)
			if !fn(vpn, &n.ptes[i], true) {
				return false
			}
			continue
		}
		child := n.children[i]
		if child == nil {
			continue
		}
		if !t.walkNode(child, level+1, prefix<<radixBits|uint64(i), fn, visited) {
			return false
		}
	}
	return true
}
