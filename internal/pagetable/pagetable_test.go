package pagetable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tieredmem/internal/mem"
)

func TestPTEBits(t *testing.T) {
	p := NewPTE(0x123, true)
	if !p.Present() || !p.Writable() || p.Accessed() || p.Dirty() || p.Huge() || p.Poisoned() {
		t.Errorf("fresh PTE bits wrong: %#x", uint64(p))
	}
	if p.PFN() != 0x123 {
		t.Errorf("PFN = %#x, want 0x123", p.PFN())
	}
	ro := NewPTE(1, false)
	if ro.Writable() {
		t.Errorf("read-only PTE writable")
	}
}

func TestPTEPFNRoundtrip(t *testing.T) {
	f := func(raw uint64) bool {
		pfn := mem.PFN(raw & (1<<39 - 1)) // PFN field width
		return NewPTE(pfn, true).PFN() == pfn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapLookupUnmap(t *testing.T) {
	tb := New(1)
	tb.Map(100, 7, true)
	pte, huge, ok := tb.Lookup(100)
	if !ok || huge || pte.PFN() != 7 {
		t.Fatalf("Lookup = (%#x, %v, %v)", uint64(pte), huge, ok)
	}
	if tb.Mapped() != 1 || tb.MappedPages() != 1 {
		t.Errorf("Mapped = %d/%d, want 1/1", tb.Mapped(), tb.MappedPages())
	}
	if !tb.Unmap(100) {
		t.Fatalf("Unmap failed")
	}
	if _, _, ok := tb.Lookup(100); ok {
		t.Errorf("page still mapped after Unmap")
	}
	if tb.Unmap(100) {
		t.Errorf("second Unmap reported success")
	}
}

func TestLookupUnmappedNeighbors(t *testing.T) {
	tb := New(1)
	tb.Map(512, 1, true)
	for _, vpn := range []mem.VPN{0, 511, 513, 1 << 20} {
		if _, _, ok := tb.Lookup(vpn); ok {
			t.Errorf("vpn %d unexpectedly mapped", vpn)
		}
	}
}

func TestMapReplaces(t *testing.T) {
	tb := New(1)
	tb.Map(5, 1, true)
	tb.Map(5, 2, true)
	pte, _, _ := tb.Lookup(5)
	if pte.PFN() != 2 {
		t.Errorf("PFN = %d after remap-by-Map, want 2", pte.PFN())
	}
	if tb.Mapped() != 1 {
		t.Errorf("Mapped = %d, want 1", tb.Mapped())
	}
}

func TestAccessedDirtyBitsViaPtr(t *testing.T) {
	tb := New(1)
	tb.Map(9, 3, true)
	p, huge := tb.Resolve(9)
	if p == nil || huge {
		t.Fatalf("Resolve failed")
	}
	*p |= BitAccessed | BitDirty
	pte, _, _ := tb.Lookup(9)
	if !pte.Accessed() || !pte.Dirty() {
		t.Errorf("A/D not visible through Lookup: %#x", uint64(pte))
	}
}

func TestRemapClearsADPreservesWrite(t *testing.T) {
	tb := New(1)
	tb.Map(9, 3, true)
	p, _ := tb.Resolve(9)
	*p |= BitAccessed | BitDirty
	v := tb.Version()
	if !tb.Remap(9, 8) {
		t.Fatalf("Remap failed")
	}
	pte, _, _ := tb.Lookup(9)
	if pte.PFN() != 8 || pte.Accessed() || pte.Dirty() || !pte.Writable() {
		t.Errorf("Remap result wrong: %#x", uint64(pte))
	}
	if tb.Version() == v {
		t.Errorf("Version not bumped by Remap")
	}
}

func TestPoison(t *testing.T) {
	tb := New(1)
	tb.Map(4, 2, true)
	if !tb.SetPoison(4, true) {
		t.Fatalf("SetPoison failed")
	}
	pte, _, _ := tb.Lookup(4)
	if !pte.Poisoned() {
		t.Errorf("poison bit not set")
	}
	tb.SetPoison(4, false)
	pte, _, _ = tb.Lookup(4)
	if pte.Poisoned() {
		t.Errorf("poison bit not cleared")
	}
	if tb.SetPoison(9999, true) {
		t.Errorf("SetPoison on unmapped page reported success")
	}
}

func TestMapHugeAndResolve(t *testing.T) {
	tb := New(1)
	tb.MapHuge(1024, 2048, true)
	if tb.HugeLeaves() != 1 || tb.Mapped() != 1 {
		t.Errorf("HugeLeaves/Mapped = %d/%d", tb.HugeLeaves(), tb.Mapped())
	}
	if tb.MappedPages() != mem.HugePages {
		t.Errorf("MappedPages = %d, want %d", tb.MappedPages(), mem.HugePages)
	}
	// Every VPN in the chunk resolves to the same leaf.
	for _, off := range []uint64{0, 1, 255, 511} {
		p, huge := tb.Resolve(mem.VPN(1024 + off))
		if p == nil || !huge {
			t.Fatalf("Resolve(%d) = (%v, %v)", 1024+off, p, huge)
		}
		pfn, ok := tb.Frame(mem.VPN(1024 + off))
		if !ok || pfn != mem.PFN(2048+off) {
			t.Errorf("Frame(+%d) = %d, want %d", off, pfn, 2048+off)
		}
	}
	// PTEPtr must refuse huge leaves (4 KiB-only accessor).
	if tb.PTEPtr(1024) != nil {
		t.Errorf("PTEPtr returned a huge leaf")
	}
}

func TestMapHugeAlignmentPanics(t *testing.T) {
	tb := New(1)
	for _, c := range []struct{ vpn, pfn uint64 }{{3, 512}, {512, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MapHuge(%d, %d) did not panic", c.vpn, c.pfn)
				}
			}()
			tb.MapHuge(mem.VPN(c.vpn), mem.PFN(c.pfn), true)
		}()
	}
}

func TestMapInsideHugePanics(t *testing.T) {
	tb := New(1)
	tb.MapHuge(0, 512, true)
	defer func() {
		if recover() == nil {
			t.Errorf("Map inside a huge leaf did not panic")
		}
	}()
	tb.Map(5, 1, true)
}

func TestCanMapHuge(t *testing.T) {
	tb := New(1)
	if !tb.CanMapHuge(0) {
		t.Errorf("empty table refuses huge map")
	}
	tb.Map(5, 1, true) // a base page inside chunk 0
	if tb.CanMapHuge(0) {
		t.Errorf("chunk with base pages accepts huge map")
	}
	if !tb.CanMapHuge(512) {
		t.Errorf("clean neighboring chunk refused")
	}
	tb.MapHuge(512, 512, true)
	if tb.CanMapHuge(512) {
		t.Errorf("occupied huge chunk accepted")
	}
}

func TestSplitHuge(t *testing.T) {
	tb := New(1)
	tb.MapHuge(1024, 4096, true)
	p, _ := tb.Resolve(1030)
	*p |= BitAccessed | BitDirty
	if !tb.SplitHuge(1030) {
		t.Fatalf("SplitHuge failed")
	}
	if tb.HugeLeaves() != 0 {
		t.Errorf("HugeLeaves = %d after split", tb.HugeLeaves())
	}
	if tb.Mapped() != mem.HugePages || tb.MappedPages() != mem.HugePages {
		t.Errorf("Mapped = %d/%d after split", tb.Mapped(), tb.MappedPages())
	}
	// Children inherit frames consecutively and the A/D bits.
	for _, off := range []uint64{0, 17, 511} {
		pte, huge, ok := tb.Lookup(mem.VPN(1024 + off))
		if !ok || huge {
			t.Fatalf("child %d missing or still huge", off)
		}
		if pte.PFN() != mem.PFN(4096+off) {
			t.Errorf("child %d PFN = %d, want %d", off, pte.PFN(), 4096+off)
		}
		if !pte.Accessed() || !pte.Dirty() || !pte.Writable() {
			t.Errorf("child %d lost inherited bits: %#x", off, uint64(pte))
		}
	}
	// Now individual children can be remapped (migration).
	if !tb.Remap(1024+7, 9999) {
		t.Errorf("post-split Remap failed")
	}
	if tb.SplitHuge(1024) {
		t.Errorf("second split reported success")
	}
}

func TestUnmapHuge(t *testing.T) {
	tb := New(1)
	tb.MapHuge(512, 512, true)
	if !tb.UnmapHuge(512) {
		t.Fatalf("UnmapHuge failed")
	}
	if _, _, ok := tb.Lookup(512); ok {
		t.Errorf("huge page still mapped")
	}
	if tb.MappedPages() != 0 {
		t.Errorf("MappedPages = %d", tb.MappedPages())
	}
}

func TestWalkRangeOrderAndCount(t *testing.T) {
	tb := New(1)
	vpns := []mem.VPN{5, 1 << 18, 3, 512 * 7, 1<<27 + 9}
	for i, v := range vpns {
		tb.Map(v, mem.PFN(i+1), true)
	}
	tb.MapHuge(1<<20, 512, true)
	var visited []mem.VPN
	var hugeSeen int
	n := tb.WalkRange(func(vpn mem.VPN, pte *PTE, huge bool) bool {
		visited = append(visited, vpn)
		if huge {
			hugeSeen++
		}
		return true
	})
	if n != 6 {
		t.Errorf("visited count = %d, want 6 (huge counts once)", n)
	}
	if hugeSeen != 1 {
		t.Errorf("huge leaves seen = %d, want 1", hugeSeen)
	}
	for i := 1; i < len(visited); i++ {
		if visited[i] <= visited[i-1] {
			t.Errorf("walk not ascending: %v", visited)
		}
	}
}

func TestWalkRangeEarlyStop(t *testing.T) {
	tb := New(1)
	for i := 0; i < 10; i++ {
		tb.Map(mem.VPN(i), mem.PFN(i), true)
	}
	count := 0
	tb.WalkRange(func(vpn mem.VPN, pte *PTE, huge bool) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d, want 3", count)
	}
}

func TestWalkRangeTestAndClear(t *testing.T) {
	// The A-bit driver's usage pattern: set A via walker, clear in
	// WalkRange, verify cleared.
	tb := New(1)
	tb.Map(42, 7, true)
	p, _ := tb.Resolve(42)
	*p |= BitAccessed
	tb.WalkRange(func(vpn mem.VPN, pte *PTE, huge bool) bool {
		*pte &^= BitAccessed
		return true
	})
	pte, _, _ := tb.Lookup(42)
	if pte.Accessed() {
		t.Errorf("A bit survived test-and-clear walk")
	}
}

func TestVPNOutOfRangePanics(t *testing.T) {
	tb := New(1)
	defer func() {
		if recover() == nil {
			t.Errorf("37-bit VPN accepted")
		}
	}()
	tb.Map(mem.VPN(1)<<37, 1, true)
}

// TestTableMatchesModel is a model-based property test: a random
// sequence of map/unmap/remap operations must leave the radix table
// equivalent to a flat map.
func TestTableMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tb := New(1)
	model := map[mem.VPN]mem.PFN{}
	vpnSpace := []mem.VPN{0, 1, 511, 512, 513, 1 << 9, 1 << 18, 1<<18 + 1, 1 << 27, 1<<36 - 1}
	for i := 0; i < 5000; i++ {
		vpn := vpnSpace[rng.Intn(len(vpnSpace))]
		switch rng.Intn(3) {
		case 0:
			pfn := mem.PFN(rng.Intn(1 << 20))
			if _, mapped := model[vpn]; mapped {
				tb.Remap(vpn, pfn)
			} else {
				tb.Map(vpn, pfn, true)
			}
			model[vpn] = pfn
		case 1:
			got := tb.Unmap(vpn)
			_, want := model[vpn]
			if got != want {
				t.Fatalf("op %d: Unmap(%d) = %v, model says %v", i, vpn, got, want)
			}
			delete(model, vpn)
		case 2:
			pte, _, ok := tb.Lookup(vpn)
			pfn, want := model[vpn]
			if ok != want || (ok && pte.PFN() != pfn) {
				t.Fatalf("op %d: Lookup(%d) mismatch", i, vpn)
			}
		}
	}
	if tb.Mapped() != len(model) {
		t.Errorf("Mapped = %d, model has %d", tb.Mapped(), len(model))
	}
	count := 0
	tb.WalkRange(func(vpn mem.VPN, pte *PTE, huge bool) bool {
		if model[vpn] != pte.PFN() {
			t.Errorf("walk found vpn %d -> %d, model says %d", vpn, pte.PFN(), model[vpn])
		}
		count++
		return true
	})
	if count != len(model) {
		t.Errorf("walk visited %d, model has %d", count, len(model))
	}
}
