package tieredmem_test

// The benchmark harness: one testing.B per table and figure of the
// paper's evaluation (run with `go test -bench=. -benchmem`), plus
// component micro-benchmarks for the simulator's hot paths. The
// experiment benches use reduced reference counts so a full sweep
// finishes in minutes; cmd/tmpbench runs the full-size versions and
// writes the rendered tables under results/.

import (
	"fmt"
	"testing"

	"tieredmem/internal/core"
	"tieredmem/internal/experiments"
	"tieredmem/internal/ibs"
	"tieredmem/internal/mem"
	"tieredmem/internal/policy"
	"tieredmem/internal/sim"
	"tieredmem/internal/trace"
	"tieredmem/internal/workload"
)

// benchOpts shrinks experiment runs to benchmark-friendly sizes while
// keeping every workload in play.
func benchOpts() experiments.Options {
	o := experiments.DefaultOptions()
	o.Refs = 2_000_000
	return o
}

// BenchmarkFig2PTWToCacheMissRatio regenerates Fig. 2: the ratio of
// page-walk (A-bit-setting) events to the cache-miss events trace
// sampling draws from, for all eight workloads.
func BenchmarkFig2PTWToCacheMissRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchOpts())
		rows, err := experiments.Fig2(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderFig2(rows))
		}
	}
}

// BenchmarkTable4DetectedPages regenerates Table IV: pages captured by
// A-bit vs IBS profiling at the default, 4x, and 8x sampling rates,
// plus the §VI-A rate-gain aggregates.
func BenchmarkTable4DetectedPages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchOpts())
		res, err := experiments.Table4(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderTable4(res))
		}
	}
}

// BenchmarkFig3IBSHeatmap regenerates the Fig. 3 heatmaps (IBS samples
// over time x physical address at the 4x rate).
func BenchmarkFig3IBSHeatmap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchOpts())
		maps, err := experiments.Fig3(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			total := 0
			for _, m := range maps {
				total += m.Grid.Nonzero()
			}
			b.Logf("8 heatmaps, %d nonzero cells", total)
		}
	}
}

// BenchmarkFig4AbitHeatmap regenerates the Fig. 4 heatmaps (A-bit
// observations).
func BenchmarkFig4AbitHeatmap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchOpts())
		maps, err := experiments.Fig4(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			total := 0
			for _, m := range maps {
				total += m.Grid.Nonzero()
			}
			b.Logf("8 heatmaps, %d nonzero cells", total)
		}
	}
}

// BenchmarkFig5CDF regenerates the Fig. 5 per-page access-count CDFs
// per method and sampling rate.
func BenchmarkFig5CDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchOpts())
		series, err := experiments.Fig5(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderFig5(series))
		}
	}
}

// BenchmarkFig6Hitrate regenerates Fig. 6: tier-1 hitrate for
// {Oracle, History} x {A-bit, IBS, TMP} x ratios 1/8..1/128.
func BenchmarkFig6Hitrate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchOpts())
		res, err := experiments.Fig6(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderFig6(res))
		}
	}
}

// BenchmarkOverheadProfiling regenerates the §VI-B overhead study:
// end-to-end runtime deltas for A-bit walks, IBS at default/4x, and
// the fully gated TMP configuration. One workload per arm keeps the
// bench tractable; cmd/tmpbench sweeps all eight.
func BenchmarkOverheadProfiling(b *testing.B) {
	opts := benchOpts()
	opts.Workloads = []string{"gups", "web-serving"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Overhead(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderOverhead(rows))
		}
	}
}

// BenchmarkEndToEndSpeedup regenerates the §VI-C speedup study for a
// representative subset (full sweep in cmd/tmpbench).
func BenchmarkEndToEndSpeedup(b *testing.B) {
	opts := benchOpts()
	opts.Workloads = []string{"data-caching", "xsbench"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Speedup(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderSpeedup(res))
		}
	}
}

// BenchmarkMethodsComparison regenerates the Table-I-quantified
// profiler comparison (TMP vs AutoNUMA vs BadgerTrap) on two
// representative workloads.
func BenchmarkMethodsComparison(b *testing.B) {
	opts := benchOpts()
	opts.Workloads = []string{"data-caching", "gups"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.MethodsComparison(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderMethods(rows))
		}
	}
}

// --- Ablation benches for the design decisions DESIGN.md calls out ---

// BenchmarkAblationShootdown compares A-bit scanning with and without
// the TLB shootdown the paper's third optimization omits.
func BenchmarkAblationShootdown(b *testing.B) {
	for _, shootdown := range []bool{false, true} {
		b.Run(fmt.Sprintf("shootdown=%v", shootdown), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := workload.MustNew("data-caching", workload.Config{Seed: 5, FirstPID: 100})
				cfg := sim.DefaultConfig(w, 4096, 1_500_000)
				cfg.TMP.Abit.Shootdown = shootdown
				r, err := sim.New(cfg, w)
				if err != nil {
					b.Fatal(err)
				}
				res, err := r.Run(sim.Hooks{})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("duration=%.2fms abitOverhead=%.3fms",
						float64(res.DurationNS)/1e6, float64(res.AbitOverheadNS)/1e6)
				}
			}
		})
	}
}

// BenchmarkAblationGatingThreshold sweeps the HWPC gating threshold
// (the paper uses 20%) on a phase-structured workload.
func BenchmarkAblationGatingThreshold(b *testing.B) {
	for _, thr := range []float64{0, 0.2, 0.5, 0.8} {
		b.Run(fmt.Sprintf("threshold=%.1f", thr), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := workload.MustNew("lulesh", workload.Config{Seed: 5, FirstPID: 100})
				cfg := sim.DefaultConfig(w, 4096, 1_500_000)
				cfg.TMP.Gating = thr > 0
				cfg.TMP.HWPC.Threshold = thr
				r, err := sim.New(cfg, w)
				if err != nil {
					b.Fatal(err)
				}
				res, err := r.Run(sim.Hooks{})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("overhead=%.3f%%", res.OverheadFraction()*100)
				}
			}
		})
	}
}

// BenchmarkAblationEpochLength sweeps the placement epoch around the
// paper's 1-second choice.
func BenchmarkAblationEpochLength(b *testing.B) {
	for _, div := range []int64{10, 1} {
		epoch := sim.ScaledSecond / div
		b.Run(fmt.Sprintf("epoch=%dus", epoch/1000), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mk := func() workload.Workload {
					return workload.MustNew("phase-shift", workload.Config{Seed: 9, FirstPID: 300})
				}
				cfg := sim.DefaultPlacementConfig(mk(), 4096, 2_000_000, 8, policy.History{}, core.MethodCombined)
				cfg.EpochNS = epoch
				res, err := sim.RunPlacement(cfg, mk())
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("hitrate=%.3f promotions=%d", res.Hitrate(), res.Promotions)
				}
			}
		})
	}
}

// BenchmarkAblationRankWeights compares TMP's plain-sum rank against
// the single-method ranks on the offline Fig. 6 pipeline.
func BenchmarkAblationRankWeights(b *testing.B) {
	opts := benchOpts()
	opts.Workloads = []string{"xsbench"}
	s := experiments.NewSuite(opts)
	cp, err := s.Capture("xsbench", ibs.Rate4x)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range core.Methods {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hr := policy.EvaluateHitrate(policy.Oracle{}, cp.Result.Epochs, m, 1024)
				if i == 0 {
					b.Logf("hitrate=%.3f", hr.Hitrate())
				}
			}
		})
	}
}

// --- Component micro-benchmarks -------------------------------------

// BenchmarkMachineExecute measures the simulator's core loop: one
// reference through TLB, page walk, caches, and memory.
func BenchmarkMachineExecute(b *testing.B) {
	for _, name := range []string{"gups", "lulesh", "web-serving"} {
		b.Run(name, func(b *testing.B) {
			w := workload.MustNew(name, workload.Config{Seed: 2, FirstPID: 100})
			cfg := sim.DefaultConfig(w, 1<<30, 1)
			r, err := sim.New(cfg, w)
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]trace.Ref, 1024)
			b.ResetTimer()
			for i := 0; i < b.N; i += len(buf) {
				w.Fill(buf)
				for j := range buf {
					if _, err := r.Machine.Execute(buf[j]); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.SetBytes(64)
		})
	}
}

// BenchmarkWorkloadFill measures reference generation alone.
func BenchmarkWorkloadFill(b *testing.B) {
	for _, name := range workload.Names {
		b.Run(name, func(b *testing.B) {
			w := workload.MustNew(name, workload.Config{Seed: 2, FirstPID: 100})
			buf := make([]trace.Ref, 1024)
			b.ResetTimer()
			for i := 0; i < b.N; i += len(buf) {
				w.Fill(buf)
			}
		})
	}
}

// BenchmarkIBSEngine measures the sampling engine's retire hook.
func BenchmarkIBSEngine(b *testing.B) {
	eng, err := ibs.New(ibs.DefaultConfig(4096), nil)
	if err != nil {
		b.Fatal(err)
	}
	o := &trace.Outcome{Source: trace.SrcTier1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.ObserveRetire(o, 3)
	}
}

// BenchmarkAblationWriteBias compares History against the
// WriteBiased(PML) policy on the write-split workload, where NVM
// writes cost twice reads.
func BenchmarkAblationWriteBias(b *testing.B) {
	for _, arm := range []struct {
		name string
		p    policy.Policy
	}{
		{"history", policy.History{}},
		{"write-biased", policy.WriteBiased{Bias: 4}},
	} {
		b.Run(arm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := workload.MustNew("write-split", workload.Config{Seed: 11, FirstPID: 400})
				cfg := sim.DefaultPlacementConfig(w, 4096, 2_000_000, 8, arm.p, core.MethodCombined)
				cfg.TMP.EnablePML = true
				res, err := sim.RunPlacement(cfg, w)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("duration=%.2fms hitrate=%.3f", float64(res.DurationNS)/1e6, res.Hitrate())
				}
			}
		})
	}
}

// BenchmarkColocationFilter regenerates the process-filter study.
func BenchmarkColocationFilter(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Colocation(opts, 16)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderColocation(res))
		}
	}
}

// --- Hot-path micro-benchmarks (PERFORMANCE.md) ---------------------
//
// These pin the per-epoch aggregation/ranking costs that dominate the
// single-cell experiment path. Run with -benchmem: the CI
// bench-compare job diffs them against the merge base and fails on an
// allocs/op regression in the steady-state harvest.

// hotPathEpochs builds synthetic harvests with an overlapping,
// tie-heavy key space: pages shift by 1/8 of the footprint per epoch,
// ranks repeat modulo small primes, tiers alternate.
func hotPathEpochs(epochs, pagesPer int) []core.EpochStats {
	out := make([]core.EpochStats, epochs)
	for e := range out {
		out[e].Epoch = e
		out[e].Pages = make([]core.PageStat, pagesPer)
		for i := range out[e].Pages {
			vpn := mem.VPN((i + e*pagesPer/8) % (pagesPer * 2))
			tier := mem.SlowTier
			if i%3 == 0 {
				tier = mem.FastTier
			}
			out[e].Pages[i] = core.PageStat{
				Key:   core.PageKey{PID: 100 + i%4, VPN: vpn},
				Tier:  tier,
				Abit:  uint32(i % 7),
				Trace: uint32(i % 11),
				Write: uint32(i % 3),
				True:  uint32(i % 5),
			}
		}
	}
	return out
}

// BenchmarkSumEpochs measures the dense cross-epoch merge (32 epochs
// of 4 Ki pages, heavily overlapping keys).
func BenchmarkSumEpochs(b *testing.B) {
	epochs := hotPathEpochs(32, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SumEpochs(epochs)
	}
}

// shardHarvests builds one epoch's per-cell harvests the way the
// sharded pipeline produces them: a fixed total page count split into
// disjoint per-cell key spaces (each cell owns its own PIDs), pages
// pre-sorted in (PID,VPN) order within a cell.
func shardHarvests(shards, totalPages int) []core.EpochStats {
	per := totalPages / shards
	out := make([]core.EpochStats, shards)
	for s := range out {
		out[s].Epoch = 7
		out[s].Pages = make([]core.PageStat, per)
		for i := range out[s].Pages {
			out[s].Pages[i] = core.PageStat{
				Key:   core.PageKey{PID: 100 + s, VPN: mem.VPN(i)},
				Tier:  mem.TierID(s % 2),
				Abit:  uint32(i % 7),
				Trace: uint32(i % 11),
				Write: uint32(i % 3),
				True:  uint32(i % 5),
			}
		}
	}
	return out
}

// BenchmarkMergeHarvests measures the epoch-cut reduce of the sharded
// pipeline: fusing per-cell dense harvests into one canonical
// (PID,VPN)-ordered epoch. Total pages are held constant so the
// shard-count axis isolates merge cost, and the recycled Merger is the
// steady-state path the fused run takes every epoch — the CI
// bench-compare job pins it at 0 allocs/op alongside
// BenchmarkHarvestSteadyState.
func BenchmarkMergeHarvests(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			parts := shardHarvests(shards, 32768)
			m := core.NewMerger(0)
			var dst core.EpochStats
			m.Merge(&dst, parts) // grow table and scratch once
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Merge(&dst, parts)
			}
		})
	}
}

// BenchmarkRankedPages measures the full canonical sort of a large
// merged harvest.
func BenchmarkRankedPages(b *testing.B) {
	stats := core.SumEpochs(hotPathEpochs(8, 16384))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RankedPages(stats, core.MethodCombined)
	}
}

// BenchmarkTopK measures bounded selection at policy-sized capacities
// over the same harvest BenchmarkRankedPages fully sorts.
func BenchmarkTopK(b *testing.B) {
	stats := core.SumEpochs(hotPathEpochs(8, 16384))
	for _, k := range []int{64, 1024} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.TopK(stats, core.MethodCombined, k)
			}
		})
	}
}

// BenchmarkRanksOf measures building the mover's dense hotness table.
func BenchmarkRanksOf(b *testing.B) {
	stats := core.SumEpochs(hotPathEpochs(8, 16384))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RanksOf(stats, core.MethodCombined)
	}
}

// BenchmarkHarvestSteadyState measures the recycled-scratch harvest
// the placement loop runs every epoch. The contract is 0 allocs/op
// once the scratch has grown to the working set; the bench-compare CI
// job fails the build if this regresses.
func BenchmarkHarvestSteadyState(b *testing.B) {
	w := workload.MustNew("gups", workload.Config{Seed: 2, FirstPID: 100})
	cfg := sim.DefaultConfig(w, 4096, 1)
	r, err := sim.New(cfg, w)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]trace.Ref, 4096)
	w.Fill(buf)
	for j := range buf {
		if _, err := r.Machine.Execute(buf[j]); err != nil {
			b.Fatal(err)
		}
	}
	var ep core.EpochStats
	r.Profiler.HarvestEpochInto(&ep) // grow the scratch once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Refresh per-epoch evidence directly; only the harvest itself
		// is under measurement.
		r.Machine.Phys.ForEachAllocated(func(pd *mem.PageDescriptor) { pd.AbitEpoch = 1 })
		r.Profiler.HarvestEpochInto(&ep)
	}
}

// BenchmarkAblationDeliveryMode compares IBS-style per-sample
// interrupts against LWP/PEBS-style buffered delivery (§II-B) at the
// same sampling rate.
func BenchmarkAblationDeliveryMode(b *testing.B) {
	for _, arm := range []struct {
		name     string
		buffered bool
	}{{"ibs-interrupt", false}, {"lwp-buffered", true}} {
		b.Run(arm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := workload.MustNew("gups", workload.Config{Seed: 5, FirstPID: 100})
				cfg := sim.DefaultConfig(w, 4096, 1_500_000)
				cfg.TMP.IBS.Buffered = arm.buffered
				r, err := sim.New(cfg, w)
				if err != nil {
					b.Fatal(err)
				}
				res, err := r.Run(sim.Hooks{})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("duration=%.2fms ibsOverhead=%.3fms delivered=%d",
						float64(res.DurationNS)/1e6, float64(res.IBSOverheadNS)/1e6,
						r.Profiler.IBS.Stats().Delivered)
				}
			}
		})
	}
}
