package tieredmem_test

// Cross-package integration tests: short end-to-end checks that run in
// the default `go test ./...` sweep (the heavyweight versions live in
// the per-package suites and the benchmarks).

import (
	"testing"

	"tieredmem/internal/core"
	"tieredmem/internal/experiments"
	"tieredmem/internal/ibs"
	"tieredmem/internal/policy"
	"tieredmem/internal/sim"
	"tieredmem/internal/workload"
)

// TestPipelineSmoke runs the full profile -> rank -> offline-hitrate
// pipeline on one small workload.
func TestPipelineSmoke(t *testing.T) {
	w := workload.MustNew("web-serving", workload.Config{Seed: 21, FirstPID: 100, ScaleShift: 1})
	cfg := sim.DefaultConfig(w, 4096, 1_000_000)
	r, err := sim.New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(sim.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) < 3 {
		t.Fatalf("only %d epochs", len(res.Epochs))
	}
	foot := 0
	seen := map[core.PageKey]bool{}
	for _, ep := range res.Epochs {
		for _, ps := range ep.Pages {
			if ps.True > 0 && !seen[ps.Key] {
				seen[ps.Key] = true
				foot++
			}
		}
	}
	if foot == 0 {
		t.Fatalf("no ground-truth pages")
	}
	for _, m := range core.Methods {
		hr := policy.EvaluateHitrate(policy.Oracle{}, res.Epochs, m, policy.CapacityForRatio(foot, 16))
		if hr.Hitrate() < 0 || hr.Hitrate() > 1 {
			t.Errorf("%v hitrate %v out of range", m, hr.Hitrate())
		}
	}
}

// TestPlacementSmoke runs a short live-placement arm end to end.
func TestPlacementSmoke(t *testing.T) {
	mk := func() workload.Workload {
		return workload.MustNew("phase-shift", workload.Config{Seed: 21, FirstPID: 300, ScaleShift: 2})
	}
	cfg := sim.DefaultPlacementConfig(mk(), 4096, 800_000, 8, policy.History{}, core.MethodCombined)
	res, err := sim.RunPlacement(cfg, mk())
	if err != nil {
		t.Fatal(err)
	}
	if res.MemAccesses == 0 {
		t.Fatalf("no memory accesses observed")
	}
	if res.Hitrate() < 0 || res.Hitrate() > 1 {
		t.Errorf("hitrate %v out of range", res.Hitrate())
	}
}

// TestExperimentOptionsPlumbing checks the suite caching contract.
func TestExperimentOptionsPlumbing(t *testing.T) {
	opts := experiments.DefaultOptions()
	opts.Refs = 300_000
	opts.Workloads = []string{"gups"}
	opts.ScaleShift = 2
	s := experiments.NewSuite(opts)
	a, err := s.Capture("gups", ibs.Rate4x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Capture("gups", ibs.Rate4x)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("suite did not cache the capture")
	}
	if _, err := s.Capture("no-such-workload", ibs.Rate4x); err == nil {
		t.Errorf("unknown workload accepted")
	}
}
