// Command tmpprof profiles one Table III workload with TMP on the
// simulated machine and prints what the profiler saw: detection
// counts, the hottest pages, access heatmaps, and per-mechanism
// overhead.
//
// Usage:
//
//	tmpprof -workload gups -refs 6000000 -rate 4x -heatmap
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tieredmem/internal/core"
	"tieredmem/internal/experiments"
	"tieredmem/internal/ibs"
	"tieredmem/internal/report"
	"tieredmem/internal/telemetry"
	"tieredmem/internal/teleout"
	"tieredmem/internal/workload"
)

func main() {
	var (
		name    = flag.String("workload", "gups", "workload name: "+strings.Join(append(append([]string{}, workload.Names...), "phase-shift"), ", "))
		refs    = flag.Int("refs", 6_000_000, "memory references to execute")
		rateStr = flag.String("rate", "4x", "IBS sampling rate: default, 4x, or 8x")
		seed    = flag.Int64("seed", 42, "workload seed")
		scale   = flag.Int("scale", 0, "footprint scale shift (positive shrinks)")
		period  = flag.Int("period", 16384, "base (default-rate) IBS op period")
		gating  = flag.Bool("gating", true, "enable HWPC gating of profilers")
		heat    = flag.Bool("heatmap", false, "print IBS and A-bit heatmaps")
		topN    = flag.Int("top", 10, "hottest pages to list")
		tracOut = flag.String("trace", "", "write a Chrome trace_viewer JSON (virtual-time flamegraph; open in chrome://tracing or Perfetto)")
		evtsOut = flag.String("events", "", "write the structured JSONL event log")
		metrics = flag.Bool("metrics", false, "print the per-subsystem virtual-time attribution table")
		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile of this process")
		memProf = flag.String("memprofile", "", "write a pprof heap profile of this process")
	)
	flag.Parse()

	rate, err := parseRate(*rateStr)
	if err != nil {
		// A typoed rate silently profiling at some other rate would
		// invalidate every number printed, so refuse loudly.
		fmt.Fprintln(os.Stderr, "tmpprof:", err)
		flag.Usage()
		os.Exit(2)
	}
	if *cpuProf != "" {
		stop, err := teleout.StartCPUProfile(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}
	opts := experiments.Options{
		Seed:       *seed,
		ScaleShift: *scale,
		Refs:       *refs,
		BasePeriod: *period,
		Gating:     *gating,
		Workloads:  []string{*name},
		Trace:      *tracOut != "" || *evtsOut != "" || *metrics,
	}
	cp, err := experiments.Profile(opts, *name, rate)
	if err != nil {
		fatal(err)
	}

	res := cp.Result
	fmt.Printf("workload=%s rate=%s refs=%d duration=%.2fms epochs=%d\n",
		*name, experiments.RateName(rate), res.Refs, float64(res.DurationNS)/1e6, len(res.Epochs))
	fmt.Printf("detected pages: abit=%d (leaf PTEs), ibs=%d (4KiB), both=%d\n",
		len(cp.AbitPages), len(cp.IBSPages), cp.Both())
	fmt.Printf("faults: minor=%d huge=%d; PTW events=%d, LLC misses=%d\n",
		res.MinorFaults, res.HugeFaults, cp.STLBMisses, cp.LLCMisses)
	cpuTime := float64(res.DurationNS) * float64(res.NumCores)
	fmt.Printf("profiling overhead: ibs=%.3f%% abit=%.3f%% hwpc=%.3f%% (of %d-core time)\n",
		float64(res.IBSOverheadNS)/cpuTime*100,
		float64(res.AbitOverheadNS)/cpuTime*100,
		float64(res.HWPCOverheadNS)/cpuTime*100,
		res.NumCores)

	// Hottest pages by the combined rank, summed over epochs.
	all := core.SumEpochs(res.Epochs)
	ranked := core.RankedPages(all, core.MethodCombined)
	tab := report.NewTable(fmt.Sprintf("\nTop %d pages by TMP combined rank", *topN),
		"pid", "vpn", "abit", "ibs", "rank", "true_mem_accesses")
	for i := 0; i < len(ranked) && i < *topN; i++ {
		ps := ranked[i]
		tab.AddRow(ps.Key.PID, fmt.Sprintf("%#x", uint64(ps.Key.VPN)), ps.Abit, ps.Trace,
			ps.Rank(core.MethodCombined), ps.True)
	}
	fmt.Println(tab.Render())

	if opts.Trace {
		runs := []telemetry.Labeled{{
			Label:  fmt.Sprintf("%s@%s", *name, experiments.RateName(rate)),
			Tracer: cp.Telemetry,
		}}
		if *metrics {
			rows := cp.Telemetry.Attribution(res.DurationNS, res.NumCores)
			fmt.Println(report.AttributionTable("\nVirtual-time attribution", rows).Render())
			if dists := cp.Telemetry.Distributions(); len(dists) > 0 {
				fmt.Println(report.DistTable("\nDistributions", dists).Render())
			}
		}
		if *tracOut != "" {
			if err := teleout.WriteTrace(*tracOut, runs); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "tmpprof: wrote trace %s (open in chrome://tracing or https://ui.perfetto.dev)\n", *tracOut)
		}
		if *evtsOut != "" {
			if err := teleout.WriteEvents(*evtsOut, runs); err != nil {
				fatal(err)
			}
		}
	}

	if *heat {
		s := experiments.NewSuite(opts)
		// Reuse the capture we already have when rates match.
		if rate == ibs.Rate4x {
			f3, err := experiments.Fig3(s)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.RenderHeatmaps("IBS sample heatmap (Fig. 3 style)", f3))
			f4, err := experiments.Fig4(s)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.RenderHeatmaps("A-bit heatmap (Fig. 4 style)", f4))
		} else {
			fmt.Fprintln(os.Stderr, "tmpprof: -heatmap renders at the 4x rate; rerun with -rate 4x")
		}
	}

	if *memProf != "" {
		if err := teleout.WriteMemProfile(*memProf); err != nil {
			fatal(err)
		}
	}
}

func parseRate(s string) (int, error) {
	switch s {
	case "default", "1x":
		return ibs.Rate1x, nil
	case "4x":
		return ibs.Rate4x, nil
	case "8x":
		return ibs.Rate8x, nil
	default:
		return 0, fmt.Errorf("unknown rate %q (default, 4x, 8x)", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tmpprof:", err)
	os.Exit(1)
}
