// Command tmplint runs the repo's static-analysis suite: the
// determinism and epoch-accounting analyzers in internal/analysis.
//
// Usage:
//
//	tmplint [-json] [patterns...]
//
// Patterns are package directories relative to the current module:
// "./..." (the default) analyzes every package; "./internal/cpu"
// analyzes one; a trailing "/..." analyzes a subtree. Findings print
// as file:line:col: [analyzer] message, and any finding makes the
// process exit 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tieredmem/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tmplint [-json] [patterns...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(flag.Args(), *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "tmplint:", err)
		os.Exit(2)
	}
}

func run(patterns []string, jsonOut bool) error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		return err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load(loader, cwd, patterns)
	if err != nil {
		return err
	}
	findings := analysis.Run(pkgs, analysis.Analyzers())
	if jsonOut {
		if err := writeJSON(os.Stdout, findings); err != nil {
			return err
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
	return nil
}

// load resolves patterns to type-checked packages, deduplicated by
// import path.
func load(loader *analysis.Loader, cwd string, patterns []string) ([]*analysis.Package, error) {
	seen := make(map[string]bool)
	var out []*analysis.Package
	add := func(pkgs ...*analysis.Package) {
		for _, p := range pkgs {
			if !seen[p.Path] {
				seen[p.Path] = true
				out = append(out, p)
			}
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			pkgs, err := loader.LoadAll()
			if err != nil {
				return nil, err
			}
			add(pkgs...)
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(cwd, strings.TrimSuffix(pat, "/..."))
			pkgs, err := loadTree(loader, root)
			if err != nil {
				return nil, err
			}
			if len(pkgs) == 0 {
				// "..." expansion skips testdata, vendor, and hidden
				// dirs, same as the go tool; name those dirs directly.
				return nil, fmt.Errorf("pattern %s matched no packages", pat)
			}
			add(pkgs...)
		default:
			pkg, err := loader.LoadDir(filepath.Join(cwd, pat))
			if err != nil {
				return nil, err
			}
			add(pkg)
		}
	}
	return out, nil
}

// loadTree loads every package under root by filtering a full module
// load down to the subtree.
func loadTree(loader *analysis.Loader, root string) ([]*analysis.Package, error) {
	all, err := loader.LoadAll()
	if err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	var out []*analysis.Package
	for _, p := range all {
		if p.Dir == abs || strings.HasPrefix(p.Dir, abs+string(filepath.Separator)) {
			out = append(out, p)
		}
	}
	return out, nil
}

// jsonFinding is the -json output row.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func writeJSON(w *os.File, findings []analysis.Finding) error {
	rows := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		rows = append(rows, jsonFinding{
			Analyzer: f.Analyzer,
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
