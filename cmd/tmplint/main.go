// Command tmplint runs the repo's static-analysis suite: the
// determinism and epoch-accounting analyzers in internal/analysis.
//
// Usage:
//
//	tmplint [-format=text|json|github] [-json] [-tests] [-times] [patterns...]
//
// Patterns are package directories relative to the current module:
// "./..." (the default) analyzes every package; "./internal/cpu"
// analyzes one; a trailing "/..." analyzes a subtree. With -tests the
// matched packages' _test.go files are analyzed too (by the analyzers
// that opt into test code). Findings print as file:line:col:
// [analyzer] message — or as a JSON array (-format=json, which also
// carries each analyzer's doc string) or GitHub Actions ::error
// annotations (-format=github) — and any finding makes the process
// exit 1. -times prints per-analyzer wall time to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tieredmem/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON (alias for -format=json)")
	format := flag.String("format", "text", "output format: text, json, or github (::error annotations)")
	tests := flag.Bool("tests", false, "also analyze _test.go files of the matched packages")
	times := flag.Bool("times", false, "print per-analyzer wall time to stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tmplint [-format=text|json|github] [-json] [-tests] [-times] [patterns...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *jsonOut {
		*format = "json"
	}
	switch *format {
	case "text", "json", "github":
	default:
		fmt.Fprintf(os.Stderr, "tmplint: unknown format %q (want text, json, or github)\n", *format)
		os.Exit(2)
	}
	if err := run(flag.Args(), *format, *tests, *times); err != nil {
		fmt.Fprintln(os.Stderr, "tmplint:", err)
		os.Exit(2)
	}
}

func run(patterns []string, format string, tests, times bool) error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		return err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load(loader, cwd, patterns)
	if err != nil {
		return err
	}
	if tests {
		variants, err := loader.LoadTests(pkgs)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, variants...)
	}
	var opts *analysis.Options
	if times {
		opts = &analysis.Options{Now: time.Now}
	}
	findings, elapsed := analysis.RunWithOptions(pkgs, analysis.Analyzers(), opts)
	switch format {
	case "json":
		if err := writeJSON(os.Stdout, findings); err != nil {
			return err
		}
	case "github":
		writeGitHub(os.Stdout, findings)
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if times {
		for _, at := range elapsed {
			fmt.Fprintf(os.Stderr, "tmplint: %-12s %8.1fms\n", at.Name, float64(at.Elapsed)/float64(time.Millisecond))
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
	return nil
}

// load resolves patterns to type-checked packages, deduplicated by
// import path.
func load(loader *analysis.Loader, cwd string, patterns []string) ([]*analysis.Package, error) {
	seen := make(map[string]bool)
	var out []*analysis.Package
	add := func(pkgs ...*analysis.Package) {
		for _, p := range pkgs {
			if !seen[p.Path] {
				seen[p.Path] = true
				out = append(out, p)
			}
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			pkgs, err := loader.LoadAll()
			if err != nil {
				return nil, err
			}
			add(pkgs...)
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(cwd, strings.TrimSuffix(pat, "/..."))
			pkgs, err := loadTree(loader, root)
			if err != nil {
				return nil, err
			}
			if len(pkgs) == 0 {
				// "..." expansion skips testdata, vendor, and hidden
				// dirs, same as the go tool; name those dirs directly.
				return nil, fmt.Errorf("pattern %s matched no packages", pat)
			}
			add(pkgs...)
		default:
			pkg, err := loader.LoadDir(filepath.Join(cwd, pat))
			if err != nil {
				return nil, err
			}
			add(pkg)
		}
	}
	return out, nil
}

// loadTree loads every package under root by filtering a full module
// load down to the subtree.
func loadTree(loader *analysis.Loader, root string) ([]*analysis.Package, error) {
	all, err := loader.LoadAll()
	if err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	var out []*analysis.Package
	for _, p := range all {
		if p.Dir == abs || strings.HasPrefix(p.Dir, abs+string(filepath.Separator)) {
			out = append(out, p)
		}
	}
	return out, nil
}

// analyzerDocs maps analyzer name to its one-paragraph contract, for
// the JSON output.
func analyzerDocs() map[string]string {
	docs := make(map[string]string)
	for _, a := range analysis.Analyzers() {
		docs[a.Name] = a.Doc
	}
	return docs
}

// jsonFinding is the -format=json output row. Findings arrive from the
// engine already sorted by (file, line, col, analyzer), so the emitted
// bytes are stable across runs.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	Doc      string `json:"doc"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, findings []analysis.Finding) error {
	docs := analyzerDocs()
	rows := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		rows = append(rows, jsonFinding{
			Analyzer: f.Analyzer,
			Doc:      docs[f.Analyzer],
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// writeGitHub emits GitHub Actions workflow annotations: each finding
// becomes an ::error line anchored to its file and position, so CI
// surfaces findings inline on the pull request diff.
func writeGitHub(w io.Writer, findings []analysis.Finding) {
	for _, f := range findings {
		fmt.Fprintf(w, "::error file=%s,line=%d,col=%d::[%s] %s\n",
			f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, escapeAnnotation(f.Message))
	}
}

// escapeAnnotation applies the workflow-command data escaping rules
// (%, CR, LF) so multi-line or percent-bearing messages survive.
func escapeAnnotation(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
