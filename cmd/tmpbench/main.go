// Command tmpbench regenerates every table and figure of the paper's
// evaluation and writes them under a results directory:
//
//	fig2.txt      PTW-to-cache-miss event ratios
//	table4.txt    pages captured per method and sampling rate (+CSV)
//	fig3.txt      IBS heatmaps (per-workload ASCII + CSV)
//	fig4.txt      A-bit heatmaps
//	fig5.txt      per-page access-count CDFs (+CSV points)
//	fig6.txt      tier-1 hitrates by policy/method/ratio (+CSV)
//	overhead.txt  §VI-B profiling overhead study
//	speedup.txt   §VI-C end-to-end speedups (emulated + native)
//	methods.txt   Table I quantified: TMP vs AutoNUMA vs BadgerTrap
//	colocation.txt  process-filter study under consolidation
//	epochsweep.txt  epoch-length sweep (the paper's 1 s choice)
//	multitier.txt   evidence mechanisms across 2-/3-/4-tier chains
//	bwcontend.txt   transactional migration under bandwidth admission control
//
// Usage:
//
//	tmpbench -out results                 # everything (several minutes)
//	tmpbench -exp fig6 -workloads gups    # one experiment, one workload
//	tmpbench -parallel 1                  # sequential cells (same bytes, slower)
//	tmpbench -exp speedup -shards 8       # shard each machine across 8 workers
//	tmpbench -quick                       # keep heavy families at -refs
//
// Independent experiment cells fan out on a bounded worker pool
// (-parallel, default GOMAXPROCS); results reassemble in submission
// order, so the emitted files are byte-identical at any width. The
// speedup/overhead families default to a 100M-reference regime
// (-heavy-refs; -quick keeps them at -refs) and, with -shards N,
// additionally partition each simulated machine per core and run the
// per-core cells on an intra-cell shard pool — output stays
// byte-identical at any shard width >= 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"tieredmem/internal/experiments"
	"tieredmem/internal/fault"
	"tieredmem/internal/report"
	"tieredmem/internal/runner"
	"tieredmem/internal/telemetry"
	"tieredmem/internal/teleout"
)

func main() {
	var (
		out       = flag.String("out", "results", "output directory")
		exp       = flag.String("exp", "all", "experiment: all, fig2, table4, fig3, fig4, fig5, fig6, overhead, speedup, methods, colocation, epochsweep, multitier, bwcontend")
		refs      = flag.Int("refs", 8_000_000, "references per profiling run")
		seed      = flag.Int64("seed", 42, "workload seed")
		scale     = flag.Int("scale", 0, "footprint scale shift")
		period    = flag.Int("period", 16384, "base (default-rate) IBS op period")
		gating    = flag.Bool("gating", true, "enable HWPC gating")
		faults    = flag.String("faults", "", "fault-injection spec applied to every cell, e.g. 'ibs.drop=0.05,mem.enomem=0.2' or 'all=0.1' (see ROBUSTNESS.md)")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: all eight)")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool width for independent experiment cells (1 = sequential; output is byte-identical at any setting)")
		shards    = flag.Int("shards", 0, "intra-cell shard-pool width for the speedup/overhead families: each simulated machine is partitioned per core and its cells run on this many workers (0 = legacy single-goroutine machine; output is byte-identical at any width >= 1)")
		quick     = flag.Bool("quick", false, "keep the speedup/overhead families at -refs instead of the 100M-ref default regime")
		heavyRefs = flag.Int("heavy-refs", 100_000_000, "references per run for the speedup/overhead families unless -quick (other families always use -refs)")
		stats     = flag.Bool("stats", true, "print per-experiment worker-pool stats to stderr")
		tracOut   = flag.String("trace", "", "write a Chrome trace_viewer JSON of every profiled cell (open in chrome://tracing or Perfetto)")
		evtsOut   = flag.String("events", "", "write the structured JSONL event log of every profiled cell")
		metrics   = flag.Bool("metrics", false, "write metrics.txt: per-cell virtual-time attribution plus host-side pool counters")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of this process")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile of this process")
	)
	flag.Parse()

	if *cpuProf != "" {
		stop, err := teleout.StartCPUProfile(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}
	// A bad -faults spec is a usage error, not a runtime failure: the
	// parse error lists every valid site name, and exit code 2 plus the
	// flag usage matches what a mistyped flag produces.
	faultSpec, err := fault.ParseSpec(*faults)
	if err != nil {
		usageFatal(err)
	}
	opts := experiments.Options{
		Seed:       *seed,
		ScaleShift: *scale,
		Refs:       *refs,
		BasePeriod: *period,
		Gating:     *gating,
		Parallel:   *parallel,
		Trace:      *tracOut != "" || *evtsOut != "" || *metrics,
		Faults:     faultSpec,
		Shards:     *shards,
	}
	if !*quick {
		opts.HeavyRefs = *heavyRefs
	}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}
	// internal/ packages keep the virtual-time discipline (no wall
	// clock under tmplint); main injects the monotonic clock the
	// runner's stats need.
	epoch := time.Now()
	opts.NowNS = func() int64 { return int64(time.Since(epoch)) }
	// Host-side (wall-clock) pool metrics live in their own registry,
	// never merged into the deterministic virtual-time streams.
	var hostReg telemetry.Registry
	statsHook := opts.OnRunnerStats
	if *metrics {
		statsHook = func(experiment string, s runner.Stats) {
			runner.RecordStats(&hostReg, experiment, s)
		}
	}
	if *stats {
		printStats := func(experiment string, s runner.Stats) {
			if s.Jobs == 0 {
				return
			}
			fmt.Fprintf(os.Stderr, "tmpbench: %s: %d cells on %d workers: wall=%s busy=%s maxqueue=%s speedup=%.2fx\n",
				experiment, s.Jobs, s.Workers,
				time.Duration(s.WallNS).Round(time.Millisecond),
				time.Duration(s.BusyNS).Round(time.Millisecond),
				time.Duration(maxQueueNS(s)).Round(time.Millisecond),
				s.Speedup())
			for _, js := range s.PerJob {
				fmt.Fprintf(os.Stderr, "tmpbench:   %-40s worker=%d queue=%-10s wall=%s\n",
					js.Name, js.Worker,
					time.Duration(js.QueueNS).Round(time.Millisecond),
					time.Duration(js.WallNS).Round(time.Millisecond))
			}
		}
		record := statsHook
		statsHook = func(experiment string, s runner.Stats) {
			if record != nil {
				record(experiment, s)
			}
			printStats(experiment, s)
		}
	}
	opts.OnRunnerStats = statsHook
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	suite := experiments.NewSuite(opts)

	runs := map[string]func() error{
		"fig2":       func() error { return runFig2(suite, *out) },
		"table4":     func() error { return runTable4(suite, *out) },
		"fig3":       func() error { return runFig3(suite, *out) },
		"fig4":       func() error { return runFig4(suite, *out) },
		"fig5":       func() error { return runFig5(suite, *out) },
		"fig6":       func() error { return runFig6(suite, *out) },
		"overhead":   func() error { return runOverhead(opts, *out) },
		"speedup":    func() error { return runSpeedup(opts, *out) },
		"methods":    func() error { return runMethods(opts, *out) },
		"colocation": func() error { return runColocation(opts, *out) },
		"epochsweep": func() error { return runEpochSweep(suite, *out) },
		"multitier":  func() error { return runMultiTier(opts, *out) },
		"bwcontend":  func() error { return runBWContend(opts, *out) },
	}
	order := []string{"fig2", "table4", "fig3", "fig4", "fig5", "fig6", "overhead", "speedup", "methods", "colocation", "epochsweep", "multitier", "bwcontend"}

	if *exp == "all" {
		for _, name := range order {
			fmt.Fprintf(os.Stderr, "tmpbench: running %s...\n", name)
			if err := runs[name](); err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
		}
	} else {
		run, ok := runs[*exp]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q", *exp))
		}
		if err := run(); err != nil {
			fatal(err)
		}
	}

	if *tracOut != "" {
		if err := teleout.WriteTrace(*tracOut, suite.Traces()); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tmpbench: wrote trace %s (open in chrome://tracing or https://ui.perfetto.dev)\n", *tracOut)
	}
	if *evtsOut != "" {
		if err := teleout.WriteEvents(*evtsOut, suite.Traces()); err != nil {
			fatal(err)
		}
	}
	if *metrics {
		if err := writeFile(*out, "metrics.txt", renderMetrics(suite, &hostReg)); err != nil {
			fatal(err)
		}
	}
	if *memProf != "" {
		if err := teleout.WriteMemProfile(*memProf); err != nil {
			fatal(err)
		}
	}
}

// renderMetrics builds metrics.txt: one virtual-time attribution table
// per profiled cell (deterministic), then the host-side worker-pool
// counters (wall-clock; varies run to run by design).
func renderMetrics(suite *experiments.Suite, hostReg *telemetry.Registry) string {
	var b strings.Builder
	for _, cp := range suite.Captures() {
		if cp.Telemetry == nil {
			continue
		}
		rows := cp.Telemetry.Attribution(cp.Result.DurationNS, cp.Result.NumCores)
		b.WriteString(report.AttributionTable("Virtual-time attribution: "+cp.Label(), rows).Render())
		b.WriteString("\n\n")
		if dists := cp.Telemetry.Distributions(); len(dists) > 0 {
			b.WriteString(report.DistTable("Distributions: "+cp.Label(), dists).Render())
			b.WriteString("\n\n")
		}
		// Fault-attribution section: present only when a fault plane
		// registered its counters (a -faults run), deterministic like
		// the rest of the virtual-time stream.
		var fr []report.FaultRow
		for _, cv := range cp.Telemetry.Registry().Totals() {
			if strings.HasPrefix(cv.Name, "fault/") || strings.HasPrefix(cv.Name, "mover/failed") || strings.HasPrefix(cv.Name, "mover/retr") {
				fr = append(fr, report.FaultRow{Name: cv.Name, Value: cv.Value})
			}
		}
		if len(fr) > 0 {
			b.WriteString(report.FaultTable("Fault attribution: "+cp.Label(), fr).Render())
			b.WriteString("\n\n")
		}
	}
	if totals := hostReg.Totals(); len(totals) > 0 {
		t := report.NewTable("Host pool counters (wall clock; not deterministic)", "counter", "value")
		for _, cv := range totals {
			t.AddRow(cv.Name, cv.Value)
		}
		b.WriteString(t.Render())
		b.WriteString("\n")
	}
	return b.String()
}

// maxQueueNS is the longest any cell waited for a worker.
func maxQueueNS(s runner.Stats) int64 {
	var m int64
	for _, js := range s.PerJob {
		if js.QueueNS > m {
			m = js.QueueNS
		}
	}
	return m
}

func writeFile(dir, name, content string) error {
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func runFig2(s *experiments.Suite, out string) error {
	rows, err := experiments.Fig2(s)
	if err != nil {
		return err
	}
	return writeFile(out, "fig2.txt", experiments.RenderFig2(rows))
}

func runTable4(s *experiments.Suite, out string) error {
	res, err := experiments.Table4(s)
	if err != nil {
		return err
	}
	if err := writeFile(out, "table4.txt", experiments.RenderTable4(res)); err != nil {
		return err
	}
	csv := report.NewTable("", "workload", "rate", "abit", "ibs", "both")
	for _, row := range res.Rows {
		for _, rate := range experiments.Rates {
			c := row.ByRate[rate]
			csv.AddRow(row.Workload, experiments.RateName(rate), c.Abit, c.IBS, c.Both)
		}
	}
	return writeFile(out, "table4.csv", csv.CSV())
}

func runFig3(s *experiments.Suite, out string) error {
	maps, err := experiments.Fig3(s)
	if err != nil {
		return err
	}
	if err := writeFile(out, "fig3.txt",
		experiments.RenderHeatmaps("Fig. 3: IBS (4x) access heatmaps", maps)); err != nil {
		return err
	}
	var b strings.Builder
	for _, m := range maps {
		fmt.Fprintf(&b, "# workload=%s\n%s", m.Workload, m.Grid.CSV())
	}
	return writeFile(out, "fig3.csv", b.String())
}

func runFig4(s *experiments.Suite, out string) error {
	maps, err := experiments.Fig4(s)
	if err != nil {
		return err
	}
	if err := writeFile(out, "fig4.txt",
		experiments.RenderHeatmaps("Fig. 4: A-bit access heatmaps", maps)); err != nil {
		return err
	}
	var b strings.Builder
	for _, m := range maps {
		fmt.Fprintf(&b, "# workload=%s\n%s", m.Workload, m.Grid.CSV())
	}
	return writeFile(out, "fig4.csv", b.String())
}

func runFig5(s *experiments.Suite, out string) error {
	series, err := experiments.Fig5(s)
	if err != nil {
		return err
	}
	if err := writeFile(out, "fig5.txt", experiments.RenderFig5(series)); err != nil {
		return err
	}
	return writeFile(out, "fig5.csv", experiments.Fig5CSV(series))
}

func runFig6(s *experiments.Suite, out string) error {
	res, err := experiments.Fig6(s)
	if err != nil {
		return err
	}
	if err := writeFile(out, "fig6.txt", experiments.RenderFig6(res)); err != nil {
		return err
	}
	csv := report.NewTable("", "workload", "policy", "method", "ratio", "hitrate")
	for _, pt := range res.Points {
		csv.AddRow(pt.Workload, pt.Policy, pt.Method.String(), pt.Ratio, pt.Hitrate)
	}
	return writeFile(out, "fig6.csv", csv.CSV())
}

func runOverhead(opts experiments.Options, out string) error {
	rows, err := experiments.Overhead(opts)
	if err != nil {
		return err
	}
	return writeFile(out, "overhead.txt", experiments.RenderOverhead(rows))
}

func runSpeedup(opts experiments.Options, out string) error {
	res, err := experiments.Speedup(opts)
	if err != nil {
		return err
	}
	return writeFile(out, "speedup.txt", experiments.RenderSpeedup(res))
}

func runMethods(opts experiments.Options, out string) error {
	rows, err := experiments.MethodsComparison(opts)
	if err != nil {
		return err
	}
	return writeFile(out, "methods.txt", experiments.RenderMethods(rows))
}

func runColocation(opts experiments.Options, out string) error {
	res, err := experiments.Colocation(opts, 16)
	if err != nil {
		return err
	}
	return writeFile(out, "colocation.txt", experiments.RenderColocation(res))
}

func runMultiTier(opts experiments.Options, out string) error {
	rows, err := experiments.MultiTier(opts)
	if err != nil {
		return err
	}
	return writeFile(out, "multitier.txt", experiments.RenderMultiTier(rows))
}

func runBWContend(opts experiments.Options, out string) error {
	rows, err := experiments.BWContend(opts)
	if err != nil {
		return err
	}
	return writeFile(out, "bwcontend.txt", experiments.RenderBWContend(rows))
}

func runEpochSweep(s *experiments.Suite, out string) error {
	rows, err := experiments.EpochSweep(s, nil)
	if err != nil {
		return err
	}
	return writeFile(out, "epochsweep.txt", experiments.RenderEpochSweep(rows))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tmpbench:", err)
	os.Exit(1)
}

// usageFatal reports a flag-value error the way the flag package
// reports an unknown flag: message, usage, exit 2.
func usageFatal(err error) {
	fmt.Fprintln(os.Stderr, "tmpbench:", err)
	flag.Usage()
	os.Exit(2)
}
