package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestFaultsUnknownSiteIsUsageError pins the same -faults contract as
// tmpsim's: a typo'd injection site must list the valid site names,
// print usage, and exit 2. See cmd/tmpsim/main_test.go.
func TestFaultsUnknownSiteIsUsageError(t *testing.T) {
	if os.Getenv("TMPBENCH_RUN_MAIN") == "1" {
		os.Args = []string{"tmpbench", "-faults", "bogus.site=1"}
		main()
		return // unreachable: usageFatal exits
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestFaultsUnknownSiteIsUsageError")
	cmd.Env = append(os.Environ(), "TMPBENCH_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error, got %v\noutput:\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Errorf("exit code %d, want 2 (usage error)\noutput:\n%s", code, out)
	}
	text := string(out)
	for _, want := range []string{
		"unknown site",
		"bogus.site",
		"known:",
		"mem.copyabort",
		"mem.shadowstale",
		"Usage of",
		"-faults",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("usage output missing %q:\n%s", want, text)
		}
	}
}
