// Command tmpsim runs end-to-end tiered-memory placement: one workload
// on a machine whose fast tier holds only a fraction of the footprint,
// comparing a placement arm (TMP-driven History/Decay policy) against
// the first-come-first-allocate baseline, optionally under the
// BadgerTrap emulation cost model.
//
// Usage:
//
//	tmpsim -workload data-caching -ratio 16 -policy history -method tmp
//	tmpsim -workload phase-shift -ratio 8 -emul
//
// The two arms are independent simulations and run concurrently on a
// bounded worker pool (-parallel, default GOMAXPROCS; 1 restores the
// sequential path). Output is identical at any width.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"tieredmem/internal/core"
	"tieredmem/internal/emul"
	"tieredmem/internal/fault"
	"tieredmem/internal/mem"
	"tieredmem/internal/policy"
	"tieredmem/internal/provenance"
	"tieredmem/internal/report"
	"tieredmem/internal/runner"
	"tieredmem/internal/sim"
	"tieredmem/internal/telemetry"
	"tieredmem/internal/teleout"
	"tieredmem/internal/workload"
)

func main() {
	var (
		name     = flag.String("workload", "data-caching", "workload name (Table III or phase-shift)")
		refs     = flag.Int("refs", 6_000_000, "memory references to execute")
		ratio    = flag.Int("ratio", 16, "footprint:fast-tier capacity ratio")
		polName  = flag.String("policy", "history", "placement policy: history, decay, none (baseline only)")
		method   = flag.String("method", "tmp", "profiling evidence: abit, ibs, tmp, devprof (devprof needs a device tier)")
		tiers    = flag.String("tiers", "", "tier chain: a depth (2-4, workload-sized) or an explicit spec like 'dram:1024/cxl:2048:140:180:dev/nvm:8192'; device tiers get the device-side tracker; empty keeps the legacy two-tier sizing from -ratio")
		seed     = flag.Int64("seed", 42, "workload seed")
		scale    = flag.Int("scale", 0, "footprint scale shift")
		period   = flag.Int("period", 4096, "IBS op period (4x-rate scaled default)")
		useEmul  = flag.Bool("emul", false, "apply the BadgerTrap emulation cost model (10us/13us/50us)")
		txmig    = flag.Bool("txmig", false, "transactional migration engine: multi-phase copy-while-mapped transactions that abort on mid-copy writes, plus zero-copy shadow demotions (see ROBUSTNESS.md)")
		admfrac  = flag.Float64("admission", 0, "bandwidth admission control: fraction of each epoch's simulated time migrations may spend on line traffic (0 disables; denied migrations defer or reject deterministically)")
		faults   = flag.String("faults", "", "fault-injection spec, e.g. 'ibs.drop=0.05,mem.enomem=0.2' or 'all=0.1' (see ROBUSTNESS.md); same seed + same spec reproduces the run byte-for-byte")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool width for the baseline/placement arms (1 = sequential; output is identical)")
		shards   = flag.Int("shards", 0, "intra-cell shard-pool width: partition each arm's machine per simulated core and run the cells on this many workers (0 = legacy single-goroutine machine; sharded output is byte-identical at any width >= 1)")
		tracOut  = flag.String("trace", "", "write a Chrome trace_viewer JSON (virtual-time flamegraph; open in chrome://tracing or Perfetto)")
		evtsOut  = flag.String("events", "", "write the structured JSONL event log")
		metrics  = flag.Bool("metrics", false, "print per-subsystem virtual-time attribution, distribution, and provenance-summary tables")
		provOut  = flag.String("prov", "", "write the decision-provenance JSONL log (per-page per-epoch evidence, rank, verdict; audit with tmpwhy)")
		why      = flag.String("why", "", "print one page's decision timeline after the run, as pid:vpn (vpn in hex or decimal), e.g. 100:0x2a7")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of this process")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile of this process")
	)
	flag.Parse()

	if *cpuProf != "" {
		stop, err := teleout.StartCPUProfile(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}
	traceOn := *tracOut != "" || *evtsOut != "" || *metrics
	provOn := *provOut != "" || *why != "" || *metrics

	var whyKey core.PageKey
	if *why != "" {
		var err error
		whyKey, err = provenance.ParsePageKey(*why)
		if err != nil {
			fatal(err)
		}
	}

	m, err := parseMethod(*method)
	if err != nil {
		fatal(err)
	}
	// A bad -faults spec is a usage error, not a runtime failure: the
	// parse error lists every valid site name, and exit code 2 plus the
	// flag usage matches what a mistyped flag produces.
	faultSpec, err := fault.ParseSpec(*faults)
	if err != nil {
		usageFatal(err)
	}
	// Policies may be stateful (Decay keeps per-page scores), so every
	// run — and every cell of a sharded run — constructs its own
	// instance from this builder.
	var mkPol func() policy.Policy
	switch *polName {
	case "history":
		mkPol = func() policy.Policy { return policy.History{} }
	case "decay":
		mkPol = func() policy.Policy { return policy.NewDecay(0.5) }
	case "none":
		mkPol = nil
	default:
		fatal(fmt.Errorf("unknown policy %q (history, decay, none)", *polName))
	}
	var pol policy.Policy
	if mkPol != nil {
		pol = mkPol()
	}

	mk := func() workload.Workload {
		return workload.MustNew(*name, workload.Config{Seed: *seed, ScaleShift: *scale, FirstPID: 100})
	}

	// -tiers accepts either a chain depth (sized for the workload the
	// same way -ratio sizes the two-tier machine) or a full spec.
	var chain mem.TierChain
	if *tiers != "" {
		var cerr error
		if n, aerr := strconv.Atoi(*tiers); aerr == nil {
			chain, cerr = sim.DefaultChain(mk(), *ratio, n)
		} else {
			chain, cerr = mem.ParseTierChain(*tiers)
		}
		if cerr != nil {
			fatal(cerr)
		}
	}
	if m == core.MethodDev && !chain.HasDevice() {
		fatal(fmt.Errorf("method devprof needs a device tier (pass -tiers 3, -tiers 4, or a spec with a ':dev' tier)"))
	}

	var costs *emul.Costs
	if *useEmul {
		c := emul.PaperCosts(0)
		costs = &c
	}

	armNames := []string{"baseline"}
	if pol != nil {
		armNames = append(armNames, *polName)
	}
	baseCfg := func(p policy.Policy) sim.PlacementConfig {
		cfg := sim.DefaultPlacementConfig(mk(), *period, *refs, *ratio, p, m)
		cfg.Tiers = chain
		cfg.TMP.EnableDevProf = chain.HasDevice()
		cfg.EmulCosts = costs
		cfg.TxMigration = *txmig
		cfg.AdmissionFrac = *admfrac
		return cfg
	}
	epoch := time.Now()
	nowNS := func() int64 { return int64(time.Since(epoch)) }

	var results []sim.PlacementResult
	var runs []telemetry.Labeled
	var runArm []int            // runs[i] belongs to arm runArm[i]
	var planes [][]*fault.Plane // per-arm planes (one per cell when sharded)
	var provLogs []provenance.Log

	if *shards > 0 {
		// Sharded path: each arm's machine is partitioned per simulated
		// core and its cells run on the -shards pool (the concurrency
		// lives inside the arm, so arms run back to back). Telemetry
		// exports per-cell tracers in cell order and provenance fuses to
		// one canonical log per policy arm; all printed output is a pure
		// function of (seed, config) at any -shards width >= 1.
		for ai, label := range armNames {
			scfg := sim.ShardedPlacementConfig{
				Base:      baseCfg(nil),
				Shards:    *shards,
				NowNS:     nowNS,
				Label:     label,
				Trace:     traceOn,
				Prov:      provOn,
				FaultSpec: faultSpec,
				FaultSeed: *seed,
			}
			if ai > 0 {
				scfg.MkPolicy = mkPol
			}
			sres, err := sim.RunShardedPlacement(scfg, mk)
			if err != nil {
				fatal(err)
			}
			results = append(results, sres.PlacementResult)
			for range sres.Telemetry {
				runArm = append(runArm, ai)
			}
			runs = append(runs, sres.Telemetry...)
			planes = append(planes, sres.Planes)
			if sres.HasProv {
				provLogs = append(provLogs, sres.Prov)
			}
			fmt.Fprintf(os.Stderr, "tmpsim: %s: %d cells on %d workers: wall=%s busy=%s\n",
				label, sres.Stats.Jobs, sres.Stats.Workers,
				time.Duration(sres.Stats.WallNS).Round(time.Millisecond),
				time.Duration(sres.Stats.BusyNS).Round(time.Millisecond))
		}
	} else {
		// Legacy path: each arm is one self-contained single-goroutine
		// simulation (its own workload built from the seed); the two
		// arms fan out on the runner pool, results come back in
		// submission order, and the printed report is byte-identical at
		// any -parallel width. Each arm owns a private tracer (never
		// shared across goroutines), and the exported runs list follows
		// submission order, so telemetry files are byte-identical at any
		// width too.
		var recorders []*provenance.Recorder
		arm := func(ai int, label string, p policy.Policy) runner.Job[sim.PlacementResult] {
			var tr *telemetry.Tracer
			if traceOn {
				tr = telemetry.New()
				runs = append(runs, telemetry.Labeled{Label: label, Tracer: tr})
				runArm = append(runArm, ai)
			}
			// Like the tracer, a fault plane belongs to exactly one run:
			// each arm derives a private plane from the same seed + spec,
			// which keeps arms independent of pool width.
			var fp *fault.Plane
			if !faultSpec.Zero() {
				fp = fault.New(faultSpec, *seed)
			}
			planes = append(planes, []*fault.Plane{fp})
			// The flight recorder is also one-per-run; the baseline arm has
			// no policy to decide anything, so only policy arms record.
			var rec *provenance.Recorder
			if provOn && p != nil {
				rec = provenance.New()
			}
			recorders = append(recorders, rec)
			return runner.Job[sim.PlacementResult]{Name: label, Run: func() (sim.PlacementResult, error) {
				cfg := baseCfg(p)
				cfg.Tracer = tr
				cfg.Faults = fp
				cfg.Prov = rec
				return sim.RunPlacement(cfg, mk())
			}}
		}
		jobs := []runner.Job[sim.PlacementResult]{arm(0, "baseline", nil)}
		if pol != nil {
			jobs = append(jobs, arm(1, *polName, pol))
		}
		var stats runner.Stats
		var err error
		results, stats, err = runner.Run(runner.Config{
			Workers: *parallel,
			NowNS:   nowNS,
		}, jobs)
		if err != nil {
			fatal(err)
		}
		if pol != nil {
			fmt.Fprintf(os.Stderr, "tmpsim: %d arms on %d workers: wall=%s busy=%s\n",
				stats.Jobs, stats.Workers,
				time.Duration(stats.WallNS).Round(time.Millisecond),
				time.Duration(stats.BusyNS).Round(time.Millisecond))
		}
		// Snapshot provenance in submission order: logs are labeled like
		// telemetry runs and byte-identical at any -parallel width.
		for i, rec := range recorders {
			if rec.Enabled() {
				provLogs = append(provLogs, rec.Snapshot(armNames[i]))
			}
		}
	}

	base := results[0]
	if chain != nil {
		fmt.Printf("tier chain: %s\n", chain)
	}
	fmt.Printf("baseline (first-touch): duration=%.2fms hitrate=%.3f mem_accesses=%d\n",
		float64(base.DurationNS)/1e6, base.Hitrate(), base.MemAccesses)

	if pol != nil {
		placed := results[1]
		fmt.Printf("%s: duration=%.2fms hitrate=%.3f promotions=%d demotions=%d\n",
			placed.Arm, float64(placed.DurationNS)/1e6, placed.Hitrate(), placed.Promotions, placed.Demotions)
		if costs != nil {
			fmt.Printf("emulation: injected=%.2fms over %d protection faults\n",
				float64(placed.EmulInjected)/1e6, placed.EmulFaults)
		}
		fmt.Printf("speedup over first-touch: %.3fx\n",
			float64(base.DurationNS)/float64(placed.DurationNS))
	}

	if !faultSpec.Zero() {
		// Fault-attribution section: what the plane(s) injected into
		// each arm and how the mover/profiler absorbed it. Same seed +
		// same spec reproduces these numbers exactly; sharded runs sum
		// per-cell planes in cell order.
		for i, r := range results {
			tab := report.FaultTable(
				fmt.Sprintf("\nFault attribution (%s, spec %q): %s", armNames[i], faultSpec, r.Arm),
				sim.MergedFaultAttribution(planes[i], r))
			fmt.Println(tab.Render())
			if len(r.Quarantined) > 0 {
				fmt.Printf("quarantined: %s\n", strings.Join(r.Quarantined, ", "))
			}
		}
	}

	if *metrics {
		for i, r := range runs {
			// Each run's spans normalize against its arm's fused duration;
			// a sharded cell is a single-core machine, so its tracer
			// divides by one core, not the arm's cell count.
			ar := results[runArm[i]]
			cores := ar.NumCores
			if *shards > 0 {
				cores = 1
			}
			rows := r.Tracer.Attribution(ar.DurationNS, cores)
			tab := report.AttributionTable(fmt.Sprintf("\nVirtual-time attribution: %s", r.Label), rows)
			fmt.Println(tab.Render())
			if dists := r.Tracer.Distributions(); len(dists) > 0 {
				fmt.Println(report.DistTable(fmt.Sprintf("\nDistributions: %s", r.Label), dists).Render())
			}
		}
		for i := range provLogs {
			lg := &provLogs[i]
			fmt.Println()
			fmt.Println(provenance.SummaryTable(lg).Render())
			fmt.Println(provenance.PingPongTable(lg, 10).Render())
			fmt.Println(provenance.DecisiveTable(lg).Render())
		}
	}
	if *why != "" {
		found := false
		for i := range provLogs {
			if pg := provLogs[i].Find(whyKey); pg != nil {
				fmt.Println()
				fmt.Println(provenance.TimelineTable(pg).Render())
				found = true
			}
		}
		if !found {
			fatal(fmt.Errorf("-why %s: page pid=%d vpn=%#x has no provenance records (never harvested or moved in any policy arm)",
				*why, whyKey.PID, uint64(whyKey.VPN)))
		}
	}
	if *provOut != "" {
		if err := teleout.WriteProvenance(*provOut, provLogs); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tmpsim: wrote provenance log %s (audit with tmpwhy -log %s)\n", *provOut, *provOut)
	}
	if *tracOut != "" {
		if err := teleout.WriteTrace(*tracOut, runs); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tmpsim: wrote trace %s (open in chrome://tracing or https://ui.perfetto.dev)\n", *tracOut)
	}
	if *evtsOut != "" {
		if err := teleout.WriteEvents(*evtsOut, runs); err != nil {
			fatal(err)
		}
	}
	if *memProf != "" {
		if err := teleout.WriteMemProfile(*memProf); err != nil {
			fatal(err)
		}
	}
}

func parseMethod(s string) (core.Method, error) {
	switch s {
	case "abit":
		return core.MethodAbit, nil
	case "ibs", "trace":
		return core.MethodTrace, nil
	case "tmp", "combined":
		return core.MethodCombined, nil
	case "devprof", "dev":
		return core.MethodDev, nil
	default:
		return 0, fmt.Errorf("unknown method %q (abit, ibs, tmp, devprof)", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tmpsim:", err)
	os.Exit(1)
}

// usageFatal reports a flag-value error the way the flag package
// reports an unknown flag: message, usage, exit 2.
func usageFatal(err error) {
	fmt.Fprintln(os.Stderr, "tmpsim:", err)
	flag.Usage()
	os.Exit(2)
}
