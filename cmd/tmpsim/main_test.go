package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestFaultsUnknownSiteIsUsageError pins the CLI contract for a typo'd
// -faults site: the error must name the valid sites (so the user can
// fix the spec without reading source), print usage, and exit 2 — the
// same shape the flag package gives an unknown flag. The test re-execs
// itself as the CLI via an env guard.
func TestFaultsUnknownSiteIsUsageError(t *testing.T) {
	if os.Getenv("TMPSIM_RUN_MAIN") == "1" {
		os.Args = []string{"tmpsim", "-faults", "bogus.site=1"}
		main()
		return // unreachable: usageFatal exits
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestFaultsUnknownSiteIsUsageError")
	cmd.Env = append(os.Environ(), "TMPSIM_RUN_MAIN=1")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit error, got %v\noutput:\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Errorf("exit code %d, want 2 (usage error)\noutput:\n%s", code, out)
	}
	text := string(out)
	for _, want := range []string{
		"unknown site",
		"bogus.site",
		"known:",        // the error lists every valid site name
		"mem.copyabort", // including the transactional-migration sites
		"mem.shadowstale",
		"Usage of",
		"-faults",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("usage output missing %q:\n%s", want, text)
		}
	}
}
