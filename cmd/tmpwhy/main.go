// Command tmpwhy audits a decision-provenance log written by
// `tmpsim -prov`: it answers "why did the policy do that to this page"
// from the recorded per-epoch evidence vectors, fused rank positions,
// and typed verdicts, without re-running the simulation.
//
// Usage:
//
//	tmpsim -workload gups -prov prov.jsonl
//	tmpwhy -log prov.jsonl                 # run-level summary tables
//	tmpwhy -log prov.jsonl -page 100:0x2a7 # one page's decision timeline
//	tmpwhy -log prov.jsonl -top 5          # worst ping-pong pages only
//
// The log is deterministic JSONL (schema-versioned, one decision per
// line), so it also greps and jqs cleanly; see OBSERVABILITY.md for
// the record format and the verdict-reason taxonomy.
package main

import (
	"flag"
	"fmt"
	"os"

	"tieredmem/internal/provenance"
)

func main() {
	var (
		logPath = flag.String("log", "", "provenance JSONL log to audit (written by tmpsim -prov)")
		page    = flag.String("page", "", "print one page's decision timeline, as pid:vpn (vpn in hex or decimal)")
		top     = flag.Int("top", 10, "ping-pong pages to list in the summary")
		summary = flag.Bool("summary", false, "print the run-level summary tables (the default when -page is not given)")
	)
	flag.Parse()

	if *logPath == "" {
		fatal(fmt.Errorf("-log is required (write one with: tmpsim -workload gups -prov prov.jsonl)"))
	}
	f, err := os.Open(*logPath)
	if err != nil {
		fatal(err)
	}
	logs, err := provenance.ReadLog(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if len(logs) == 0 {
		fatal(fmt.Errorf("%s holds no provenance runs", *logPath))
	}

	if *page != "" {
		key, err := provenance.ParsePageKey(*page)
		if err != nil {
			fatal(err)
		}
		found := false
		for i := range logs {
			if pg := logs[i].Find(key); pg != nil {
				fmt.Printf("run %q:\n", logs[i].Label)
				fmt.Println(provenance.TimelineTable(pg).Render())
				found = true
			}
		}
		if !found {
			fatal(fmt.Errorf("page pid=%d vpn=%#x has no records in %s",
				key.PID, uint64(key.VPN), *logPath))
		}
		if !*summary {
			return
		}
	}

	for i := range logs {
		lg := &logs[i]
		fmt.Println(provenance.SummaryTable(lg).Render())
		fmt.Println(provenance.PingPongTable(lg, *top).Render())
		fmt.Println(provenance.DecisiveTable(lg).Render())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tmpwhy:", err)
	os.Exit(1)
}
