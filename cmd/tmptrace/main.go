// Command tmptrace captures a TMP profiling run's IBS/PEBS sample
// stream to the library's binary trace format, and analyzes saved
// traces offline: summary statistics, per-page access CDF, and a
// time-by-address heatmap — the postmortem half of the profiling
// pipeline, so a run can be captured once and re-analyzed without
// re-simulation.
//
// Usage:
//
//	tmptrace -capture -workload xsbench -refs 6000000 -o xsbench.tmp
//	tmptrace -capture -workload gups -events events.jsonl -metrics
//	tmptrace -analyze xsbench.tmp
//	tmptrace -analyze xsbench.tmp -heatmap
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"tieredmem/internal/experiments"
	"tieredmem/internal/ibs"
	"tieredmem/internal/mem"
	"tieredmem/internal/report"
	"tieredmem/internal/stats"
	"tieredmem/internal/telemetry"
	"tieredmem/internal/teleout"
	"tieredmem/internal/trace"
)

func main() {
	var (
		capture = flag.Bool("capture", false, "profile a workload and write its sample stream")
		analyze = flag.String("analyze", "", "trace file to analyze")
		name    = flag.String("workload", "gups", "workload to capture")
		refs    = flag.Int("refs", 6_000_000, "references to execute during capture")
		rate    = flag.String("rate", "4x", "sampling rate: default, 4x, 8x")
		seed    = flag.Int64("seed", 42, "workload seed")
		out     = flag.String("o", "trace.tmp", "output trace path for -capture")
		heat    = flag.Bool("heatmap", false, "render a heatmap during -analyze")
		topN    = flag.Int("top", 10, "hottest pages to list during -analyze")
		tracOut = flag.String("trace", "", "write a Chrome trace_viewer JSON of the capture run (open in chrome://tracing or Perfetto)")
		evtsOut = flag.String("events", "", "write the capture run's structured JSONL event log")
		metrics = flag.Bool("metrics", false, "print the capture run's per-subsystem virtual-time attribution table")
	)
	flag.Parse()

	switch {
	case *capture:
		if err := doCapture(*name, *refs, *rate, *seed, *out, *tracOut, *evtsOut, *metrics); err != nil {
			fatal(err)
		}
	case *analyze != "":
		if err := doAnalyze(*analyze, *heat, *topN); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "tmptrace: pass -capture or -analyze FILE")
		os.Exit(2)
	}
}

func doCapture(name string, refs int, rateStr string, seed int64, out, tracOut, evtsOut string, metrics bool) error {
	rateMap := map[string]int{"default": ibs.Rate1x, "1x": ibs.Rate1x, "4x": ibs.Rate4x, "8x": ibs.Rate8x}
	rate, ok := rateMap[rateStr]
	if !ok {
		return fmt.Errorf("unknown rate %q", rateStr)
	}
	opts := experiments.Options{
		Seed:       seed,
		Refs:       refs,
		BasePeriod: 16384,
		Gating:     true,
		Workloads:  []string{name},
		Trace:      tracOut != "" || evtsOut != "" || metrics,
	}
	cp, err := experiments.Profile(opts, name, rate)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	for i := range cp.IBSSamples {
		if err := w.Write(cp.IBSSamples[i]); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("captured %d samples from %s (%.1f virtual ms) to %s\n",
		w.Count(), name, float64(cp.Result.DurationNS)/1e6, out)
	if opts.Trace {
		runs := []telemetry.Labeled{{Label: cp.Label(), Tracer: cp.Telemetry}}
		if metrics {
			rows := cp.Telemetry.Attribution(cp.Result.DurationNS, cp.Result.NumCores)
			fmt.Println(report.AttributionTable("\nVirtual-time attribution", rows).Render())
			if dists := cp.Telemetry.Distributions(); len(dists) > 0 {
				fmt.Println(report.DistTable("\nDistributions", dists).Render())
			}
		}
		if tracOut != "" {
			if err := teleout.WriteTrace(tracOut, runs); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "tmptrace: wrote trace %s (open in chrome://tracing or https://ui.perfetto.dev)\n", tracOut)
		}
		if evtsOut != "" {
			if err := teleout.WriteEvents(evtsOut, runs); err != nil {
				return err
			}
		}
	}
	return nil
}

func doAnalyze(path string, heat bool, topN int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	samples, err := r.ReadAll()
	if err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("trace %s holds no samples", path)
	}

	type key struct {
		pid int
		vpn mem.VPN
	}
	perPage := map[key]uint64{}
	var loads, stores, tier2 uint64
	var tMin, tMax int64 = samples[0].Now, samples[0].Now
	var aMax uint64
	for i := range samples {
		s := &samples[i]
		perPage[key{s.PID, mem.VPNOf(s.VAddr)}]++
		if s.Kind == trace.Store {
			stores++
		} else {
			loads++
		}
		if s.Source == trace.SrcTier2 {
			tier2++
		}
		if s.Now < tMin {
			tMin = s.Now
		}
		if s.Now > tMax {
			tMax = s.Now
		}
		if s.PAddr > aMax {
			aMax = s.PAddr
		}
	}
	fmt.Printf("%d samples, %d distinct pages, %d loads / %d stores, %d tier-2 sourced\n",
		len(samples), len(perPage), loads, stores, tier2)
	fmt.Printf("span: %.2f virtual ms\n", float64(tMax-tMin)/1e6)

	counts := make([]uint64, 0, len(perPage))
	for _, c := range perPage {
		counts = append(counts, c)
	}
	fmt.Printf("per-page samples: %v\n", stats.Summarize(counts))

	type kv struct {
		k key
		v uint64
	}
	ranked := make([]kv, 0, len(perPage))
	for k, v := range perPage {
		ranked = append(ranked, kv{k, v})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].v != ranked[j].v {
			return ranked[i].v > ranked[j].v
		}
		if ranked[i].k.pid != ranked[j].k.pid {
			return ranked[i].k.pid < ranked[j].k.pid
		}
		return ranked[i].k.vpn < ranked[j].k.vpn
	})
	fmt.Printf("\nhottest %d pages by sample count:\n", topN)
	for i := 0; i < len(ranked) && i < topN; i++ {
		fmt.Printf("  pid=%d vpn=%#x samples=%d\n",
			ranked[i].k.pid, uint64(ranked[i].k.vpn), ranked[i].v)
	}

	if heat {
		h := stats.NewHeatmap(64, 24, tMin, tMax+1, 0, aMax+mem.PageSize)
		for i := range samples {
			h.Add(samples[i].Now, samples[i].PAddr, 1)
		}
		fmt.Printf("\nheatmap (x: time ->, y: physical address ^):\n%s", h.Render())
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tmptrace:", err)
	os.Exit(1)
}
