package tieredmem_test

// Docs-sync tests: the counter and histogram lists in OBSERVABILITY.md
// are checked in both directions against the names a fully
// instrumented run actually registers. A new runtime metric without a
// doc entry fails, and so does a documented name that no longer
// exists — the doc cannot drift from the code.

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"tieredmem/internal/core"
	"tieredmem/internal/fault"
	"tieredmem/internal/order"
	"tieredmem/internal/policy"
	"tieredmem/internal/provenance"
	"tieredmem/internal/sim"
	"tieredmem/internal/telemetry"
	"tieredmem/internal/workload"
)

// instrumentedRegistry runs one maximally instrumented placement —
// three-tier chain (device tracker attached), fault plane, tracer,
// and flight recorder — and returns its counter registry. Every
// subsystem registers its full name set eagerly at SetTracer, so the
// run only has to wire everything, not exercise every path.
func instrumentedRegistry(t *testing.T) *telemetry.Registry {
	t.Helper()
	mk := func() workload.Workload {
		return workload.MustNew("gups", workload.Config{Seed: 42, FirstPID: 100, ScaleShift: 2})
	}
	chain, err := sim.DefaultChain(mk(), 8, 3)
	if err != nil {
		t.Fatalf("DefaultChain: %v", err)
	}
	spec, err := fault.ParseSpec("all=0.05")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	cfg := sim.DefaultPlacementConfig(mk(), 8192, 200_000, 8, policy.History{}, core.MethodCombined)
	cfg.Tiers = chain
	cfg.TMP.EnableDevProf = chain.HasDevice()
	cfg.Tracer = telemetry.New()
	cfg.Faults = fault.New(spec, 42)
	cfg.Prov = provenance.New()
	if _, err := sim.RunPlacement(cfg, mk()); err != nil {
		t.Fatalf("RunPlacement: %v", err)
	}
	return cfg.Tracer.Registry()
}

// docMetricNames extracts every backticked <subsystem>/<metric> token
// from one "## heading" section of OBSERVABILITY.md.
func docMetricNames(t *testing.T, heading string) map[string]bool {
	t.Helper()
	raw, err := os.ReadFile("OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("read OBSERVABILITY.md: %v", err)
	}
	_, rest, ok := strings.Cut(string(raw), "\n## "+heading+"\n")
	if !ok {
		t.Fatalf("OBSERVABILITY.md has no %q section", heading)
	}
	section, _, _ := strings.Cut(rest, "\n## ")
	re := regexp.MustCompile("`([a-z]+/[a-z0-9_]+)`")
	names := map[string]bool{}
	for _, m := range re.FindAllStringSubmatch(section, -1) {
		names[m[1]] = true
	}
	if len(names) == 0 {
		t.Fatalf("no metric names parsed from the %q section", heading)
	}
	return names
}

// TestDocsSyncCounters pins OBSERVABILITY.md's "Counter naming" list
// to the counters an instrumented run registers, both directions.
// (The runner/… host-pool counters live in a separate registry that is
// never merged into the virtual-time streams; the doc describes them
// in prose, not in the checked list.)
func TestDocsSyncCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("placement runs are slow")
	}
	reg := instrumentedRegistry(t)
	doc := docMetricNames(t, "Counter naming")
	registered := map[string]bool{}
	for _, name := range reg.Names() {
		registered[name] = true
		if !doc[name] {
			t.Errorf("counter %s is registered at runtime but missing from OBSERVABILITY.md's counter list", name)
		}
	}
	for _, name := range order.SortedKeys(doc) {
		if !registered[name] {
			t.Errorf("OBSERVABILITY.md documents counter %s, which no instrumented run registers", name)
		}
	}
}

// TestDocsSyncHistograms does the same for the "Distribution
// histograms" section.
func TestDocsSyncHistograms(t *testing.T) {
	if testing.Short() {
		t.Skip("placement runs are slow")
	}
	reg := instrumentedRegistry(t)
	doc := docMetricNames(t, "Distribution histograms")
	registered := map[string]bool{}
	for _, name := range reg.HistNames() {
		registered[name] = true
		if !doc[name] {
			t.Errorf("histogram %s is registered at runtime but missing from OBSERVABILITY.md's histogram list", name)
		}
	}
	for _, name := range order.SortedKeys(doc) {
		if !registered[name] {
			t.Errorf("OBSERVABILITY.md documents histogram %s, which no instrumented run registers", name)
		}
	}
}

// TestDocsSyncShardFlags keeps the sharded-pipeline flag surface
// honest in both directions: each flag must still be defined by the
// commands the docs attribute it to (a rename or removal fails here
// before a stale doc ships), and each doc that explains the sharded
// pipeline must actually name the flag.
func TestDocsSyncShardFlags(t *testing.T) {
	files := map[string]string{}
	read := func(path string) string {
		if s, ok := files[path]; ok {
			return s
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		files[path] = string(raw)
		return files[path]
	}
	for _, tc := range []struct {
		flag    string
		defined []string // sources that must register the flag
		docs    []string // docs that must mention -flag
	}{
		{"shards",
			[]string{"cmd/tmpsim/main.go", "cmd/tmpbench/main.go"},
			[]string{"README.md", "EXPERIMENTS.md", "PERFORMANCE.md"}},
		{"quick",
			[]string{"cmd/tmpbench/main.go"},
			[]string{"EXPERIMENTS.md", "PERFORMANCE.md"}},
		{"heavy-refs",
			[]string{"cmd/tmpbench/main.go"},
			[]string{"EXPERIMENTS.md"}},
		{"txmig",
			[]string{"cmd/tmpsim/main.go"},
			[]string{"OBSERVABILITY.md", "ROBUSTNESS.md"}},
		{"admission",
			[]string{"cmd/tmpsim/main.go"},
			[]string{"OBSERVABILITY.md", "ROBUSTNESS.md"}},
	} {
		def := regexp.MustCompile(`flag\.\w+\("` + regexp.QuoteMeta(tc.flag) + `"`)
		for _, src := range tc.defined {
			if !def.MatchString(read(src)) {
				t.Errorf("%s does not define flag -%s, but the docs say it does", src, tc.flag)
			}
		}
		for _, doc := range tc.docs {
			if !strings.Contains(read(doc), "-"+tc.flag) {
				t.Errorf("%s never mentions -%s; document the sharded-pipeline flag or drop it from this check", doc, tc.flag)
			}
		}
	}
}
