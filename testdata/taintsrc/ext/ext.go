// Package ext stands in for helper code outside internal/ — cmd/
// flag plumbing, scripts — where wall-clock reads and global rand are
// legal. The taint fixture imports it to prove the engine's facts
// travel: findings appear in the importing internal/ package, at the
// call sites that launder these results in.
package ext

import (
	"math/rand"
	"time"
)

// Stamp derives directly from the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Indirect derives from the wall clock two hops away, through Stamp
// and a local variable.
func Indirect() int64 {
	v := Stamp()
	return v + 1
}

// Roll draws from the process-global rand source.
func Roll() int64 {
	return rand.Int63()
}

// Pure is untainted: no fact is exported for it, and feeding it into
// telemetry or fault calls is clean.
func Pure(x int64) int64 {
	return x + 1
}
