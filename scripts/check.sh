#!/usr/bin/env bash
# check.sh — the repo gate: build, vet, format, tmplint, race tests.
# Every PR must pass this; CI runs it on push and pull_request.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> gofmt -l"
unformatted=$(gofmt -l . | grep -v '^testdata/' | grep -v '/testdata/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> tmplint ./..."
go run ./cmd/tmplint ./...

echo "==> go test -race ./..."
# The race detector slows the simulator-heavy packages ~10x; the
# experiments suite alone can exceed go test's default 10m per-package
# timeout, so give the binaries room.
go test -race -timeout 40m ./...

echo "All checks passed."
