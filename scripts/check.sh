#!/usr/bin/env bash
# check.sh — the repo gate: build, vet, format, tmplint, race tests.
# Every PR must pass this; CI runs it on push and pull_request.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> gofmt -l"
unformatted=$(gofmt -l . | grep -v '^testdata/' | grep -v '/testdata/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> tmplint -tests ./..."
# -tests loads each package's _test.go files too, so the test-aware
# analyzers (maprange, goroutine) police test code as well: a map-order
# dependent assertion in a test is exactly as flaky as one in the tree.
go run ./cmd/tmplint -tests ./...

echo "==> go test -race -shuffle=on ./..."
# The race detector slows the simulator-heavy packages ~10x, but the
# experiments suite now runs its cells on the parallel runner (one
# worker per core by default), so 15m per package is ample headroom.
# -shuffle=on randomizes test order each run: tests must not depend on
# sibling-test side effects, matching the determinism contract's
# "every cell is a pure function of its config" rule.
go test -race -shuffle=on -timeout 15m ./...

echo "All checks passed."
