// Command benchcmp compares two `go test -bench -benchmem` outputs —
// the PR head and its merge base — and prints a delta table. It is
// the comparator behind the bench-compare CI job and uses only the
// standard library.
//
// Usage:
//
//	go run ./scripts/benchcmp [-allocs-guard REGEX] old.txt new.txt
//
// Benchmarks present only in new.txt are reported as "new" (the merge
// base predates them); benchmarks present only in old.txt are
// reported as "gone". Neither fails the comparison. The one hard
// gate is the allocation guard: any benchmark whose name matches
// -allocs-guard (default HarvestSteadyState|MergeHarvests) and whose
// allocs/op increased over the base exits 1 — the steady-state
// harvest and the sharded pipeline's epoch-cut merge are
// contractually allocation-free and a regression there silently
// re-inflates every epoch of every experiment cell.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result holds one benchmark line's measurements. allocs is -1 when
// the line carried no allocs/op column (benchmark ran without
// -benchmem or never calls ReportAllocs).
type result struct {
	nsPerOp float64
	allocs  float64
}

// benchLine matches a benchmark result line: name, iteration count,
// ns/op, then optional -benchmem columns. The -N GOMAXPROCS suffix is
// stripped from the name so runs on machines with different core
// counts still line up.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

var allocsCol = regexp.MustCompile(`([0-9.]+) allocs/op`)

func parseFile(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]result)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		r := result{nsPerOp: ns, allocs: -1}
		if a := allocsCol.FindStringSubmatch(m[3]); a != nil {
			r.allocs, _ = strconv.ParseFloat(a[1], 64)
		}
		// Repeated runs of the same benchmark (e.g. -count>1): keep the
		// fastest, the conventional benchstat-free noise reduction.
		if prev, ok := out[m[1]]; !ok || ns < prev.nsPerOp {
			out[m[1]] = r
		}
	}
	return out, sc.Err()
}

func main() {
	guard := flag.String("allocs-guard", "HarvestSteadyState|MergeHarvests",
		"fail when a benchmark matching this regexp regresses in allocs/op")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-allocs-guard REGEX] old.txt new.txt")
		os.Exit(2)
	}
	guardRE, err := regexp.Compile(*guard)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: bad -allocs-guard: %v\n", err)
		os.Exit(2)
	}
	old, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	cur, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(old)+len(cur))
	seen := make(map[string]bool)
	for n := range cur {
		names = append(names, n)
		seen[n] = true
	}
	for n := range old {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-50s %14s %14s %9s %9s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "allocs")
	failed := false
	for _, n := range names {
		o, haveOld := old[n]
		c, haveNew := cur[n]
		switch {
		case !haveNew:
			fmt.Fprintf(w, "%-50s %14.0f %14s %9s %9s\n", n, o.nsPerOp, "gone", "", "")
		case !haveOld:
			fmt.Fprintf(w, "%-50s %14s %14.0f %9s %9s\n", n, "new", c.nsPerOp, "", allocsStr(c))
		default:
			delta := (c.nsPerOp - o.nsPerOp) / o.nsPerOp * 100
			fmt.Fprintf(w, "%-50s %14.0f %14.0f %+8.1f%% %9s\n",
				n, o.nsPerOp, c.nsPerOp, delta, allocsDelta(o, c))
			if guardRE.MatchString(n) && o.allocs >= 0 && c.allocs > o.allocs {
				failed = true
				fmt.Fprintf(w, "FAIL: %s allocs/op regressed: %.0f -> %.0f\n",
					n, o.allocs, c.allocs)
			}
		}
	}
	if failed {
		w.Flush()
		os.Exit(1)
	}
}

func allocsStr(r result) string {
	if r.allocs < 0 {
		return ""
	}
	return strconv.FormatFloat(r.allocs, 'f', -1, 64)
}

func allocsDelta(o, c result) string {
	if o.allocs < 0 || c.allocs < 0 {
		return ""
	}
	return strings.TrimSpace(fmt.Sprintf("%s->%s", allocsStr(o), allocsStr(c)))
}
