module tieredmem

go 1.22
